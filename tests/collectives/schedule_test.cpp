#include "collectives/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "collectives/comm_cache.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

bool is_pow2(int x) { return x >= 1 && (x & (x - 1)) == 0; }

int ilog2(int x) {
  int l = 0;
  while ((1 << (l + 1)) <= x) ++l;
  return l;
}

TEST(PatternNameTest, Names) {
  EXPECT_STREQ(pattern_name(Pattern::kRecursiveDoubling), "RD");
  EXPECT_STREQ(pattern_name(Pattern::kRecursiveHalvingVD), "RHVD");
  EXPECT_STREQ(pattern_name(Pattern::kBinomial), "Binomial");
  EXPECT_STREQ(pattern_name(Pattern::kRing), "Ring");
  EXPECT_STREQ(pattern_name(Pattern::kPairwiseAlltoall), "Alltoall");
}

TEST(ScheduleTest, SingleProcessHasNoCommunication) {
  for (const Pattern p : {Pattern::kRecursiveDoubling,
                          Pattern::kRecursiveHalvingVD, Pattern::kBinomial,
                          Pattern::kRing, Pattern::kPairwiseAlltoall})
    EXPECT_TRUE(make_schedule(p, 1, 1024).empty());
}

TEST(ScheduleTest, TwoProcessesSingleExchange) {
  for (const Pattern p : {Pattern::kRecursiveDoubling,
                          Pattern::kRecursiveHalvingVD, Pattern::kBinomial,
                          Pattern::kRing, Pattern::kPairwiseAlltoall}) {
    const auto sched = make_schedule(p, 2, 1024);
    ASSERT_EQ(sched.size(), 1u) << pattern_name(p);
    ASSERT_EQ(sched[0].pairs.size(), 1u) << pattern_name(p);
    EXPECT_EQ(sched[0].pairs[0], (std::pair<std::int32_t, std::int32_t>{0, 1}));
  }
}

TEST(ScheduleTest, RecursiveDoublingEightProcs) {
  // The paper's Figure 3: 8 processes, 3 steps; step k partners i <-> i^2^k.
  const auto sched = make_schedule(Pattern::kRecursiveDoubling, 8, 1.0);
  ASSERT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched[0].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_EQ(sched[1].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 2}, {1, 3}, {4, 6}, {5, 7}}));
  EXPECT_EQ(sched[2].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 4}, {1, 5}, {2, 6}, {3, 7}}));
  for (const auto& step : sched) EXPECT_DOUBLE_EQ(step.msize, 1.0);
}

TEST(ScheduleTest, RhvdDistanceHalvesAndMessageDoubles) {
  const double base = 1024.0;
  const auto sched = make_schedule(Pattern::kRecursiveHalvingVD, 8, base);
  ASSERT_EQ(sched.size(), 3u);
  // Step 0: farthest partners (distance 4), base message.
  EXPECT_EQ(sched[0].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 4}, {1, 5}, {2, 6}, {3, 7}}));
  EXPECT_DOUBLE_EQ(sched[0].msize, base);
  // Step 2: adjacent partners carry the doubled-up vector.
  EXPECT_EQ(sched[2].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_DOUBLE_EQ(sched[1].msize, 2 * base);
  EXPECT_DOUBLE_EQ(sched[2].msize, 4 * base);
}

TEST(ScheduleTest, RhvdMovesMoreBytesThanRd) {
  // §6.1: "the total number of parallel communications is higher for RHVD".
  for (const int p : {4, 8, 16, 64, 256}) {
    const auto rd = make_schedule(Pattern::kRecursiveDoubling, p, 1024.0);
    const auto rhvd = make_schedule(Pattern::kRecursiveHalvingVD, p, 1024.0);
    EXPECT_GT(total_bytes(rhvd), total_bytes(rd)) << "p=" << p;
  }
}

TEST(ScheduleTest, BinomialStepSizesGrow) {
  const auto sched = make_schedule(Pattern::kBinomial, 8, 64.0);
  ASSERT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched[0].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{{0, 1}}));
  EXPECT_EQ(sched[1].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{{0, 2},
                                                                {1, 3}}));
  EXPECT_EQ(sched[2].pairs,
            (std::vector<std::pair<std::int32_t, std::int32_t>>{
                {0, 4}, {1, 5}, {2, 6}, {3, 7}}));
}

TEST(ScheduleTest, BinomialBroadcastReachesEveryRank) {
  for (const int p : {2, 3, 5, 8, 13, 16, 100}) {
    const auto sched = make_schedule(Pattern::kBinomial, p, 1.0);
    std::set<int> reached{0};
    for (const auto& step : sched)
      for (const auto& [a, b] : step.pairs) {
        EXPECT_TRUE(reached.contains(a)) << "sender not yet reached, p=" << p;
        reached.insert(b);
      }
    EXPECT_EQ(reached.size(), static_cast<std::size_t>(p)) << "p=" << p;
  }
}

TEST(ScheduleTest, RingHasOneRepeatedStep) {
  const auto sched = make_schedule(Pattern::kRing, 6, 10.0);
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched[0].repeat, 5);
  EXPECT_EQ(sched[0].pairs.size(), 6u);  // each neighbor link, incl. wrap
  EXPECT_EQ(total_pair_messages(sched), 30);
}

TEST(ScheduleTest, RingOfTwoDoesNotDuplicatePair) {
  const auto sched = make_schedule(Pattern::kRing, 2, 10.0);
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched[0].pairs.size(), 1u);
  EXPECT_EQ(sched[0].repeat, 1);
}

TEST(ScheduleTest, TotalBytesAndMessages) {
  const auto sched = make_schedule(Pattern::kRecursiveDoubling, 8, 100.0);
  EXPECT_DOUBLE_EQ(total_bytes(sched), 3 * 4 * 100.0);
  EXPECT_EQ(total_pair_messages(sched), 12);
}

TEST(ScheduleTest, RejectsInvalidArguments) {
  EXPECT_THROW(make_schedule(Pattern::kRecursiveDoubling, 0, 1.0),
               InvariantError);
  EXPECT_THROW(make_schedule(Pattern::kRecursiveDoubling, 4, -1.0),
               InvariantError);
}

TEST(ScheduleTest, AlltoallPowerOfTwoUsesXorMatchings) {
  const auto sched = make_schedule(Pattern::kPairwiseAlltoall, 8, 5.0);
  ASSERT_EQ(sched.size(), 7u);  // p - 1 steps
  for (std::size_t k = 0; k < sched.size(); ++k) {
    ASSERT_EQ(sched[k].pairs.size(), 4u);  // perfect matching
    for (const auto& [a, b] : sched[k].pairs)
      EXPECT_EQ(a ^ b, static_cast<int>(k) + 1);
    EXPECT_DOUBLE_EQ(sched[k].msize, 5.0);
  }
}

TEST(ScheduleTest, AlltoallCoversEveryPairExactlyOnce) {
  for (const int p : {4, 5, 8, 9, 16, 30}) {
    const auto sched = make_schedule(Pattern::kPairwiseAlltoall, p, 1.0);
    EXPECT_EQ(sched.size(), static_cast<std::size_t>(p - 1));
    std::set<std::pair<int, int>> pairs;
    for (const auto& step : sched)
      for (const auto& pr : step.pairs)
        EXPECT_TRUE(pairs.insert(pr).second) << "pair repeated, p=" << p;
    EXPECT_EQ(pairs.size(), static_cast<std::size_t>(p) * (p - 1) / 2)
        << "p=" << p;
  }
}

TEST(ScheduleTest, AlltoallMovesTheMostBytesAndSteps) {
  // Alltoall volume is O(p^2 * msize): strictly above the constant-msize
  // patterns. The vector-doubling allgather (RHVD) reaches the same total
  // volume (every rank ends up with (p-1)*msize either way), but alltoall
  // needs p-1 synchronized steps to move it versus RHVD's log2(p).
  for (const int p : {8, 32, 128}) {
    const auto a2a = make_schedule(Pattern::kPairwiseAlltoall, p, 1.0);
    for (const Pattern other :
         {Pattern::kRecursiveDoubling, Pattern::kBinomial})
      EXPECT_GT(total_bytes(a2a), total_bytes(make_schedule(other, p, 1.0)))
          << "p=" << p;
    const auto rhvd = make_schedule(Pattern::kRecursiveHalvingVD, p, 1.0);
    EXPECT_DOUBLE_EQ(total_bytes(a2a), total_bytes(rhvd)) << "p=" << p;
    EXPECT_GT(a2a.size(), rhvd.size()) << "p=" << p;
  }
}

TEST(ScheduleTest, AlltoallMaterializationIsCappedAt4096Ranks) {
  // Beyond the old 1024-rank cap: profiles made large-p alltoall affordable,
  // so materialization now goes up to kMaxMaterializedAlltoallRanks (the
  // streaming path has no cap at all — see StreamingMatchesMaterialized).
  const int cap = kMaxMaterializedAlltoallRanks;
  ASSERT_EQ(cap, 4096);
  const auto sched = make_schedule(Pattern::kPairwiseAlltoall, cap, 1.0);
  EXPECT_EQ(sched.size(), static_cast<std::size_t>(cap - 1));
  EXPECT_EQ(total_pair_messages(sched),
            static_cast<std::int64_t>(cap) * (cap - 1) / 2);
  EXPECT_THROW(make_schedule(Pattern::kPairwiseAlltoall, cap + 1, 1.0),
               InvariantError);
}

TEST(ScheduleTest, StreamingMatchesMaterialized) {
  for (const Pattern pattern :
       {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
        Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall})
    for (const int p : {1, 2, 3, 8, 13, 64, 100}) {
      const CommSchedule materialized = make_schedule(pattern, p, 7.0);
      CommSchedule streamed;
      const bool completed = for_each_schedule_step(
          pattern, p, 7.0, [&](const CommStep& step) {
            streamed.push_back(step);
            return true;
          });
      EXPECT_TRUE(completed);
      ASSERT_EQ(streamed.size(), materialized.size())
          << pattern_name(pattern) << " p=" << p;
      for (std::size_t s = 0; s < streamed.size(); ++s) {
        EXPECT_EQ(streamed[s].pairs, materialized[s].pairs);
        EXPECT_DOUBLE_EQ(streamed[s].msize, materialized[s].msize);
        EXPECT_EQ(streamed[s].repeat, materialized[s].repeat);
      }
    }
}

TEST(ScheduleTest, StreamingVisitorCanStopEarly) {
  int visited = 0;
  const bool completed = for_each_schedule_step(
      Pattern::kPairwiseAlltoall, 512, 1.0, [&](const CommStep&) {
        return ++visited < 3;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visited, 3);
}

TEST(ScheduleTest, StreamingAlltoallScalesBeyondMaterializationCap) {
  // 8192 ranks: materialization would be ~32M pairs; streaming touches one
  // step at a time. Count steps and spot-check the XOR matching structure.
  const int p = 8192;
  std::int64_t steps = 0, pairs = 0;
  for_each_schedule_step(Pattern::kPairwiseAlltoall, p, 1.0,
                         [&](const CommStep& step) {
                           ++steps;
                           pairs += static_cast<std::int64_t>(
                               step.pairs.size());
                           return steps < 16;  // prefix is enough
                         });
  EXPECT_EQ(steps, 16);
  EXPECT_EQ(pairs, 16 * (p / 2));  // perfect matchings
}

TEST(CommCacheTest, ReturnsStableIdenticalSchedules) {
  CommCache cache(512.0);
  const CommSchedule& a = cache.schedule(Pattern::kRecursiveDoubling, 16);
  const CommSchedule& b = cache.schedule(Pattern::kBinomial, 16);
  const CommSchedule& a2 = cache.schedule(Pattern::kRecursiveDoubling, 16);
  EXPECT_EQ(&a, &a2);  // memoized
  EXPECT_NE(&a, &b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(cache.stats().schedule_misses, 2u);
  EXPECT_EQ(cache.stats().schedule_hits, 1u);
}

// ---- Property sweeps over process counts --------------------------------

class PatternSweep
    : public ::testing::TestWithParam<std::tuple<Pattern, int>> {};

TEST_P(PatternSweep, RanksAreInRangeAndPairsDistinct) {
  const auto [pattern, p] = GetParam();
  const auto sched = make_schedule(pattern, p, 1024.0);
  for (const auto& step : sched) {
    std::set<std::pair<int, int>> seen;
    for (const auto& [a, b] : step.pairs) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, p);
      EXPECT_GE(b, 0);
      EXPECT_LT(b, p);
      EXPECT_NE(a, b);
      EXPECT_TRUE(seen.emplace(a, b).second) << "duplicate pair in step";
    }
    EXPECT_GT(step.msize, 0.0);
    EXPECT_GE(step.repeat, 1);
  }
}

TEST_P(PatternSweep, NoRankTalksTwicePerStep) {
  // Within one synchronized step a rank exchanges with at most one partner.
  // Exceptions: ring steps (two neighbors per rank) and the non-power-of-two
  // alltoall shift (a rank is both a sender and a receiver per step).
  const auto [pattern, p] = GetParam();
  if (pattern == Pattern::kRing) return;
  if (pattern == Pattern::kPairwiseAlltoall && !is_pow2(p)) return;
  const auto sched = make_schedule(pattern, p, 1.0);
  for (const auto& step : sched) {
    std::set<int> busy;
    for (const auto& [a, b] : step.pairs) {
      EXPECT_TRUE(busy.insert(a).second) << "rank " << a << " used twice";
      EXPECT_TRUE(busy.insert(b).second) << "rank " << b << " used twice";
    }
  }
}

TEST_P(PatternSweep, PowerOfTwoStepCountIsLogP) {
  const auto [pattern, p] = GetParam();
  if (!is_pow2(p) || p < 2) return;
  const auto sched = make_schedule(pattern, p, 1.0);
  if (pattern == Pattern::kRing) {
    EXPECT_EQ(sched.size(), 1u);
  } else if (pattern == Pattern::kPairwiseAlltoall) {
    EXPECT_EQ(sched.size(), static_cast<std::size_t>(p - 1));
  } else {
    EXPECT_EQ(sched.size(), static_cast<std::size_t>(ilog2(p)));
  }
}

TEST_P(PatternSweep, RdLikePatternsTouchEveryRank) {
  const auto [pattern, p] = GetParam();
  if (p < 2) return;
  if (pattern != Pattern::kRecursiveDoubling &&
      pattern != Pattern::kRecursiveHalvingVD)
    return;
  const auto sched = make_schedule(pattern, p, 1.0);
  std::set<int> touched;
  for (const auto& step : sched)
    for (const auto& [a, b] : step.pairs) {
      touched.insert(a);
      touched.insert(b);
    }
  EXPECT_EQ(touched.size(), static_cast<std::size_t>(p));
}

TEST_P(PatternSweep, NonPowerOfTwoFoldHasPrePostSteps) {
  const auto [pattern, p] = GetParam();
  if (is_pow2(p) || p < 3) return;
  if (pattern != Pattern::kRecursiveDoubling &&
      pattern != Pattern::kRecursiveHalvingVD)
    return;
  const auto sched = make_schedule(pattern, p, 1.0);
  const int r = p - (1 << ilog2(p));
  // pre + log2(core) + post steps.
  EXPECT_EQ(sched.size(), static_cast<std::size_t>(ilog2(p) + 2));
  EXPECT_EQ(sched.front().pairs.size(), static_cast<std::size_t>(r));
  EXPECT_EQ(sched.back().pairs.size(), static_cast<std::size_t>(r));
  // Pre/post pair the 2r low ranks as (even, odd).
  for (const auto& [a, b] : sched.front().pairs) {
    EXPECT_EQ(a % 2, 0);
    EXPECT_EQ(b, a + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatternsAndSizes, PatternSweep,
    ::testing::Combine(::testing::Values(Pattern::kRecursiveDoubling,
                                         Pattern::kRecursiveHalvingVD,
                                         Pattern::kBinomial, Pattern::kRing,
                                         Pattern::kPairwiseAlltoall),
                       ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 64,
                                         100, 128, 512)));

}  // namespace
}  // namespace commsched
