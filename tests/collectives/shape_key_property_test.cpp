// Property/fuzz tests of ShapeKey canonicalization (collectives/
// comm_cache.hpp): the key of an ordered node list must depend on exactly
// the rank-order leaf *structure* — never on which concrete leaves are used,
// which free nodes of a leaf are picked, or whether a leaf's nodes are
// contiguous — and distinct canonical shapes must neither compare equal nor
// collide under hash_value across large random samples. This is the
// invariant that lets CommCache share one leaf-comm profile across every
// allocation with the same shape (PR 3) and keeps the profile cache's
// bucket distribution honest.
#include "collectives/comm_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "topology/builders.hpp"
#include "topology/tree.hpp"

namespace commsched {
namespace {

using Runs = std::vector<std::pair<std::int32_t, std::int32_t>>;

// Rename a run sequence's slots to dense first-appearance order — the
// canonical form make_shape_key promises to produce.
ShapeKey canonicalize(const Runs& raw_runs) {
  ShapeKey key;
  std::map<std::int32_t, std::int32_t> rename;
  for (const auto& [slot, count] : raw_runs) {
    const auto [it, inserted] =
        rename.try_emplace(slot, static_cast<std::int32_t>(rename.size()));
    key.runs.emplace_back(it->second, count);
    key.total_nodes += count;
  }
  key.num_slots = static_cast<int>(rename.size());
  return key;
}

// Draw a random abstract shape: 1..8 runs of 1..4 nodes over 1..6 logical
// leaves, adjacent runs on different leaves (equal neighbors would merge).
Runs random_runs(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_runs(1, 8);
  std::uniform_int_distribution<int> n_slots(1, 6);
  std::uniform_int_distribution<std::int32_t> count(1, 4);
  const int slots = n_slots(rng);
  std::uniform_int_distribution<std::int32_t> slot(0, slots - 1);
  Runs runs;
  const int r = n_runs(rng);
  for (int i = 0; i < r; ++i) {
    std::int32_t s = slot(rng);
    if (!runs.empty() && s == runs.back().first) {
      if (slots == 1) break;  // only one leaf: equal neighbors would merge
      s = (s + 1) % slots;
    }
    runs.emplace_back(s, count(rng));
  }
  return runs;
}

// Realize an abstract shape on a concrete tree: map each logical slot to a
// distinct concrete leaf (`leaf_order` decides which), then satisfy each run
// from that leaf's node pool (`fragmented` shuffles the pool, so runs draw
// scattered, non-contiguous nodes).
std::vector<NodeId> realize(const Tree& tree, const Runs& runs,
                            std::vector<int> leaf_order, bool fragmented,
                            std::mt19937_64& rng) {
  std::vector<std::vector<NodeId>> pools;
  for (const SwitchId leaf : tree.leaves()) {
    const auto nodes = tree.nodes_of_leaf(leaf);
    pools.emplace_back(nodes.begin(), nodes.end());
    if (fragmented)
      std::shuffle(pools.back().begin(), pools.back().end(), rng);
  }
  std::vector<NodeId> out;
  for (const auto& [slot, count] : runs) {
    auto& pool = pools[static_cast<std::size_t>(
        leaf_order[static_cast<std::size_t>(slot)])];
    for (std::int32_t i = 0; i < count; ++i) {
      EXPECT_FALSE(pool.empty()) << "tree too small for the drawn shape";
      out.push_back(pool.back());
      pool.pop_back();
    }
  }
  return out;
}

TEST(ShapeKeyProperty, RealizationsOfOneShapeShareTheCanonicalKey) {
  // 8 leaves x 64 nodes: room for any drawn shape (<= 32 nodes per slot).
  const Tree tree = make_two_level_tree(8, 64);
  std::mt19937_64 rng(0xC0FFEE);
  std::vector<int> leaf_ids(static_cast<std::size_t>(tree.leaf_count()));
  std::iota(leaf_ids.begin(), leaf_ids.end(), 0);

  for (int trial = 0; trial < 300; ++trial) {
    const Runs runs = random_runs(rng);
    const ShapeKey expected = canonicalize(runs);

    // Several independent realizations: different concrete leaves, nodes
    // drawn scattered or contiguous — all must canonicalize identically.
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<int> leaf_order = leaf_ids;
      std::shuffle(leaf_order.begin(), leaf_order.end(), rng);
      const bool fragmented = rep != 0;
      const std::vector<NodeId> nodes =
          realize(tree, runs, leaf_order, fragmented, rng);
      const ShapeKey key = make_shape_key(tree, nodes);
      ASSERT_EQ(key, expected)
          << "trial " << trial << " rep " << rep
          << ": realization changed the canonical key";
      ASSERT_EQ(hash_value(key), hash_value(expected));
    }
  }
}

TEST(ShapeKeyProperty, PermutingWholeRunsPermutesSlotNamesCanonically) {
  const Tree tree = make_two_level_tree(8, 64);
  std::mt19937_64 rng(42);
  // "A A B B" and "B B A A" are *different* shapes under first-appearance
  // naming only when run lengths differ; with symmetric runs they map to
  // the same canonical key. Check both directions explicitly.
  const Runs symmetric = {{0, 2}, {1, 2}};
  const Runs swapped = {{1, 2}, {0, 2}};
  EXPECT_EQ(canonicalize(symmetric), canonicalize(swapped));

  const Runs asymmetric = {{0, 3}, {1, 1}};
  const Runs asym_swapped = {{1, 1}, {0, 3}};
  EXPECT_NE(canonicalize(asymmetric), canonicalize(asym_swapped));

  // And the realized keys agree with the abstract ones.
  std::vector<int> order = {5, 2, 0, 7, 1, 3, 4, 6};
  EXPECT_EQ(make_shape_key(
                tree, realize(tree, symmetric, order, true, rng)),
            canonicalize(swapped));
  EXPECT_NE(make_shape_key(
                tree, realize(tree, asymmetric, order, true, rng)),
            canonicalize(asym_swapped));
}

TEST(ShapeKeyProperty, DistinctCanonicalShapesNeitherCompareEqualNorCollide) {
  std::mt19937_64 rng(0xDECAF);
  std::map<Runs, std::uint64_t> seen;  // canonical runs -> hash
  std::map<std::uint64_t, Runs> by_hash;
  int distinct = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const ShapeKey key = canonicalize(random_runs(rng));
    const std::uint64_t h = hash_value(key);
    const auto [it, inserted] = seen.try_emplace(key.runs, h);
    if (!inserted) {
      EXPECT_EQ(it->second, h) << "equal shapes must hash equally";
      continue;
    }
    ++distinct;
    const auto [hit, fresh] = by_hash.try_emplace(h, key.runs);
    EXPECT_TRUE(fresh) << "hash collision between distinct canonical shapes";
  }
  // The generator must actually exercise a large distinct sample.
  EXPECT_GT(distinct, 1000);
}

TEST(ShapeKeyProperty, KeyIgnoresWhichConcreteNodesHostTheRanks) {
  const Tree tree = make_two_level_tree(4, 16);
  // Contiguous prefix of leaf 0 vs an arbitrary scattered subset of leaf 2:
  // both are "4 nodes under one leaf".
  const auto l0 = tree.nodes_of_leaf(tree.leaves()[0]);
  const auto l2 = tree.nodes_of_leaf(tree.leaves()[2]);
  const std::vector<NodeId> contiguous(l0.begin(), l0.begin() + 4);
  const std::vector<NodeId> scattered = {l2[13], l2[1], l2[7], l2[4]};
  EXPECT_EQ(make_shape_key(tree, contiguous),
            make_shape_key(tree, scattered));

  // Splitting the same four nodes across two leaves is a different shape.
  const std::vector<NodeId> split = {l0[0], l0[1], l2[0], l2[1]};
  EXPECT_NE(make_shape_key(tree, contiguous), make_shape_key(tree, split));
}

}  // namespace
}  // namespace commsched
