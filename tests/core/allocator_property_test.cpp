// Parameterized property sweep over all four allocation policies, several
// machine shapes, request sizes and occupancy patterns.  These are the
// invariants every policy must uphold regardless of its placement strategy:
//   1. exactly N nodes, all distinct, all currently free;
//   2. success iff the machine has N free nodes at all;
//   3. determinism (same state + request -> same answer);
//   4. selection never mutates the cluster state.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/state.hpp"
#include "core/allocator_factory.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

struct PropertyCase {
  const char* machine;
  AllocatorKind kind;
  int request;
  std::uint64_t occupancy_seed;
  double occupancy;
  bool comm_intensive;
};

void occupy_randomly(ClusterState& state, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  const Tree& tree = state.tree();
  const auto target =
      static_cast<int>(fraction * static_cast<double>(tree.node_count()));
  std::vector<NodeId> nodes;
  JobId job = 1;
  int occupied = 0;
  while (occupied < target) {
    nodes.clear();
    const int chunk = static_cast<int>(rng.uniform_int(1, 16));
    for (NodeId n = 0; n < tree.node_count() &&
                       static_cast<int>(nodes.size()) < chunk; ++n)
      if (state.is_free(n) && rng.bernoulli(0.25)) nodes.push_back(n);
    if (nodes.empty()) break;
    state.allocate(job++, rng.bernoulli(0.5), nodes);
    occupied += static_cast<int>(nodes.size());
  }
}

class AllocatorPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AllocatorPropertyTest, SelectionInvariants) {
  const PropertyCase& param = GetParam();
  const Tree tree = make_machine(param.machine);
  ClusterState state(tree);
  occupy_randomly(state, param.occupancy, param.occupancy_seed);
  const int free_before = state.total_free();

  AllocationRequest request;
  request.job = 7777;
  request.num_nodes = param.request;
  request.comm_intensive = param.comm_intensive;
  request.pattern = Pattern::kRecursiveHalvingVD;

  const auto alloc = make_allocator(param.kind);
  const auto nodes = alloc->select(state, request);

  // (2) feasibility is exactly total_free >= N.
  EXPECT_EQ(nodes.has_value(), free_before >= param.request);
  // (4) selection never mutates state.
  EXPECT_EQ(state.total_free(), free_before);
  state.validate();
  if (!nodes) return;

  // (1) exactly N distinct, free nodes.
  EXPECT_EQ(nodes->size(), static_cast<std::size_t>(param.request));
  std::set<NodeId> unique(nodes->begin(), nodes->end());
  EXPECT_EQ(unique.size(), nodes->size());
  for (const NodeId n : *nodes) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, tree.node_count());
    EXPECT_TRUE(state.is_free(n));
  }

  // (3) determinism.
  const auto again = alloc->select(state, request);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*nodes, *again);

  // The allocation must actually commit cleanly.
  state.allocate(request.job, request.comm_intensive, *nodes);
  state.validate();
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  const AllocatorKind kinds[] = {AllocatorKind::kDefault,
                                 AllocatorKind::kGreedy,
                                 AllocatorKind::kBalanced,
                                 AllocatorKind::kAdaptive};
  const struct {
    const char* machine;
    std::vector<int> requests;
  } shapes[] = {
      {"figure2", {1, 2, 3, 5, 8}},
      {"department", {1, 4, 8, 12, 32, 50}},
      {"iitk", {2, 16, 17, 64, 100, 512}},
  };
  for (const auto& shape : shapes)
    for (const AllocatorKind kind : kinds)
      for (const int request : shape.requests)
        for (const auto& [seed, occupancy] :
             {std::pair<std::uint64_t, double>{11, 0.0},
              {22, 0.4},
              {33, 0.85}})
          for (const bool comm : {true, false})
            cases.push_back(
                {shape.machine, kind, request, seed, occupancy, comm});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocatorPropertyTest,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace commsched
