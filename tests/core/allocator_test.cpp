#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/adaptive_allocator.hpp"
#include "core/allocator_common.hpp"
#include "core/allocator_factory.hpp"
#include "core/balanced_allocator.hpp"
#include "core/cost_model.hpp"
#include "core/default_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

AllocationRequest comm_request(int nodes,
                               Pattern pattern = Pattern::kRecursiveDoubling) {
  AllocationRequest r;
  r.job = 999;
  r.num_nodes = nodes;
  r.comm_intensive = true;
  r.pattern = pattern;
  return r;
}

AllocationRequest compute_request(int nodes) {
  AllocationRequest r = comm_request(nodes);
  r.comm_intensive = false;
  return r;
}

// Count of allocated nodes per leaf switch, keyed by leaf id.
std::map<SwitchId, int> per_leaf(const Tree& tree,
                                 const std::vector<NodeId>& nodes) {
  std::map<SwitchId, int> counts;
  for (const NodeId n : nodes) ++counts[tree.leaf_of(n)];
  return counts;
}

// ---- find_lowest_level_switch --------------------------------------------

TEST(LowestLevelSwitchTest, PrefersLeafWhenItFits) {
  // The paper's §3.1 example: with n0, n1 allocated, a 4-node job fits the
  // lowest-level switch s1; a 6-node job needs s2.
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1});
  const SwitchId s1 = *tree.switch_by_name("s1");
  const SwitchId s2 = *tree.switch_by_name("s2");
  EXPECT_EQ(find_lowest_level_switch(state, 4), s1);
  EXPECT_EQ(find_lowest_level_switch(state, 6), s2);
}

TEST(LowestLevelSwitchTest, BestFitAmongLeaves) {
  // Two leaves: 2 free and 3 free; a 2-node job should pick the 2-free one.
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1});  // s0 has 2 free
  state.allocate(2, false, std::vector<NodeId>{4});     // s1 has 3 free
  const SwitchId s0 = *tree.switch_by_name("s0");
  EXPECT_EQ(find_lowest_level_switch(state, 2), s0);
}

TEST(LowestLevelSwitchTest, ReturnsInvalidWhenMachineCannotFit) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0});
  EXPECT_EQ(find_lowest_level_switch(state, 8), kInvalidSwitch);
  EXPECT_NE(find_lowest_level_switch(state, 7), kInvalidSwitch);
}

TEST(CommunicationRatioTest, MatchesEquation1) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  const SwitchId s0 = *tree.switch_by_name("s0");
  EXPECT_DOUBLE_EQ(communication_ratio(state, s0), 0.0);  // idle leaf
  state.allocate(1, true, std::vector<NodeId>{0});
  state.allocate(2, false, std::vector<NodeId>{1});
  // L_comm/L_busy + L_busy/L_nodes = 1/2 + 2/4 = 1.0.
  EXPECT_DOUBLE_EQ(communication_ratio(state, s0), 1.0);
}

// ---- default (stock SLURM) ------------------------------------------------

TEST(DefaultAllocatorTest, SingleLeafRequestStaysOnLeaf) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const DefaultAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(3));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(per_leaf(tree, *nodes).size(), 1u);
}

TEST(DefaultAllocatorTest, BestFitFillsFragmentedLeafFirst) {
  // s0 has 2 free, s1 has 4: a 4-node job spanning both should drain s0
  // first (best-fit reduces fragmentation), then take 2 from s1... but a
  // 4-node job fits s1 alone, so force a 5-node job.
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1});
  const DefaultAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(5));
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  const SwitchId s0 = *tree.switch_by_name("s0");
  const SwitchId s1 = *tree.switch_by_name("s1");
  EXPECT_EQ(counts.at(s0), 2);  // emptier leaf drained first
  EXPECT_EQ(counts.at(s1), 3);
}

TEST(DefaultAllocatorTest, ReturnsNulloptWhenFull) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3, 4, 5});
  const DefaultAllocator alloc;
  EXPECT_FALSE(alloc.select(state, comm_request(3)).has_value());
  EXPECT_TRUE(alloc.select(state, comm_request(2)).has_value());
}

TEST(DefaultAllocatorTest, IgnoresJobType) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0});
  const DefaultAllocator alloc;
  const auto a = alloc.select(state, comm_request(5));
  const auto b = alloc.select(state, compute_request(5));
  EXPECT_EQ(*a, *b);
}

// ---- greedy (Algorithm 1) -------------------------------------------------

TEST(GreedyAllocatorTest, CommJobAvoidsContendedLeaf) {
  // Two leaves with equal free counts; one hosts a comm-intensive job.
  // Greedy must start on the quiet leaf for a comm job.
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1});   // leaf 0: comm
  state.allocate(2, false, std::vector<NodeId>{8, 9});  // leaf 1: compute
  const GreedyAllocator alloc;
  // 6 free per leaf; a 10-node job must span both, quiet leaf first.
  const auto nodes = alloc.select(state, comm_request(10));
  ASSERT_TRUE(nodes.has_value());
  const SwitchId leaf1 = tree.leaf_of(8);
  // First six allocated nodes come from the quiet leaf 1.
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(tree.leaf_of((*nodes)[static_cast<std::size_t>(i)]), leaf1);
}

TEST(GreedyAllocatorTest, ComputeJobPrefersContendedLeaf) {
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1});
  const GreedyAllocator alloc;
  const auto nodes = alloc.select(state, compute_request(4));
  ASSERT_TRUE(nodes.has_value());
  // Compute jobs take the *highest* communication-ratio leaf (leaf 0),
  // leaving the quiet leaf for communicating jobs.
  const SwitchId leaf0 = tree.leaf_of(0);
  for (const NodeId n : *nodes) EXPECT_EQ(tree.leaf_of(n), leaf0);
}

TEST(GreedyAllocatorTest, WholeRequestOnSingleLeafWhenPossible) {
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0});
  const GreedyAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(4));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(per_leaf(tree, *nodes).size(), 1u);
}

// ---- balanced (Algorithm 2) -----------------------------------------------

TEST(BalancedAllocatorTest, ReproducesPaperTable2) {
  // Table 2: free = {160,150,100,80,70,50,40} -> alloc =
  // {128,128,64,64,64,32,32} for a 512-node job.
  const int free_counts[] = {160, 150, 100, 80, 70, 50, 40};
  const int expected[] = {128, 128, 64, 64, 64, 32, 32};
  TreeBuilder b;
  std::vector<SwitchId> leaves;
  int node = 0;
  for (int i = 0; i < 7; ++i) {
    std::vector<std::string> names;
    for (int k = 0; k < 200; ++k) names.push_back("n" + std::to_string(node++));
    leaves.push_back(b.add_leaf("L" + std::to_string(i + 1), names));
  }
  b.add_switch("root", leaves);
  const Tree tree = b.build();
  ClusterState state(tree);
  // Occupy nodes so leaf i has exactly free_counts[i] free.
  JobId job = 1;
  for (int i = 0; i < 7; ++i) {
    const int busy = 200 - free_counts[i];
    std::vector<NodeId> occupied;
    for (const NodeId n : tree.nodes_of_leaf(leaves[static_cast<std::size_t>(i)])) {
      if (static_cast<int>(occupied.size()) == busy) break;
      occupied.push_back(n);
    }
    state.allocate(job++, false, occupied);
  }

  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(512));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(nodes->size(), 512u);
  const auto counts = per_leaf(tree, *nodes);
  for (int i = 0; i < 7; ++i) {
    const SwitchId leaf = leaves[static_cast<std::size_t>(i)];
    const auto it = counts.find(leaf);
    const int got = it == counts.end() ? 0 : it->second;
    EXPECT_EQ(got, expected[i]) << "leaf L" << (i + 1);
  }
}

TEST(BalancedAllocatorTest, SplitsPowerOfTwoAcrossEqualLeaves) {
  // 8 nodes over two 6-free leaves: balanced gives 4 + 4 (the paper's §4.2
  // example), never 6 + 2.
  const Tree tree = make_two_level_tree(2, 6);
  const ClusterState state(tree);
  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(8));
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [leaf, count] : counts) EXPECT_EQ(count, 4);
}

TEST(BalancedAllocatorTest, TopUpPassFillsShortfall) {
  // Free: 5 and 5; request 8 (comm). Power-of-two pass: S=8 -> 4 on each
  // leaf (8 allocated). Now free 3 and 3; request 8 again -> pow2 pass
  // gives 2+2... verify a request that cannot be met in powers of two alone
  // still completes: free {3, 3}, request 6 -> 2+2 then top-up 1+1.
  const Tree tree = make_two_level_tree(2, 3);
  const ClusterState state(tree);
  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(6));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(nodes->size(), 6u);
}

TEST(BalancedAllocatorTest, ComputeJobFillsSmallestLeavesFirst) {
  // leaf0: 5 free, leaf1: 8 free; a 9-node request cannot fit one leaf, so
  // the compute branch (lines 30-35) applies: ascending free order drains
  // the fragmented leaf0 first.
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2});  // leaf0: 5 free
  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, compute_request(9));
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  const SwitchId leaf0 = tree.leaf_of(0);
  const SwitchId leaf1 = tree.leaf_of(8);
  EXPECT_EQ(counts.at(leaf0), 5);  // drained the fragmented leaf first
  EXPECT_EQ(counts.at(leaf1), 4);
}

TEST(BalancedAllocatorTest, LeafFittingRequestStaysOnLeaf) {
  const Tree tree = make_two_level_tree(4, 16);
  const ClusterState state(tree);
  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, comm_request(16));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(per_leaf(tree, *nodes).size(), 1u);
}

// ---- adaptive (§4.3) --------------------------------------------------------

TEST(AdaptiveAllocatorTest, PicksCheaperCandidateForCommJobs) {
  const Tree tree = make_two_level_tree(4, 8);
  ClusterState state(tree);
  // Leaf 0 busy with comm work; leaves 1-3 progressively emptier.
  state.allocate(1, true, std::vector<NodeId>{0, 1, 2, 3});
  const AdaptiveAllocator adaptive;
  const GreedyAllocator greedy;
  const BalancedAllocator balanced;
  const auto request = comm_request(8, Pattern::kRecursiveHalvingVD);
  const auto pick = adaptive.select(state, request);
  ASSERT_TRUE(pick.has_value());

  const CostModel model(tree);
  const auto schedule = make_schedule(Pattern::kRecursiveHalvingVD, 8, 1 << 20);
  const double adaptive_cost =
      model.candidate_cost(state, *pick, true, schedule);
  for (const Allocator* other :
       {static_cast<const Allocator*>(&greedy),
        static_cast<const Allocator*>(&balanced)}) {
    const auto alt = other->select(state, request);
    ASSERT_TRUE(alt.has_value());
    EXPECT_LE(adaptive_cost,
              model.candidate_cost(state, *alt, true, schedule) + 1e-9);
  }
  EXPECT_DOUBLE_EQ(adaptive.last_cost(), adaptive_cost);
}

TEST(AdaptiveAllocatorTest, PicksPricierCandidateForComputeJobs) {
  const Tree tree = make_two_level_tree(4, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1, 2, 3});
  const AdaptiveAllocator adaptive;
  const GreedyAllocator greedy;
  const BalancedAllocator balanced;
  const auto request = compute_request(8);
  const auto pick = adaptive.select(state, request);
  ASSERT_TRUE(pick.has_value());
  const CostModel model(tree);
  const auto schedule =
      make_schedule(Pattern::kRecursiveDoubling, 8, 1 << 20);
  const double picked_cost =
      model.candidate_cost(state, *pick, false, schedule);
  const auto g = greedy.select(state, request);
  const auto b = balanced.select(state, request);
  const double gc = model.candidate_cost(state, *g, false, schedule);
  const double bc = model.candidate_cost(state, *b, false, schedule);
  EXPECT_DOUBLE_EQ(picked_cost, std::max(gc, bc));
}

TEST(AdaptiveAllocatorTest, NulloptWhenNothingFits) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6});
  const AdaptiveAllocator adaptive;
  EXPECT_FALSE(adaptive.select(state, comm_request(2)).has_value());
}

// ---- factory ---------------------------------------------------------------

TEST(AllocatorFactoryTest, NamesRoundTrip) {
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    const auto alloc = make_allocator(kind);
    EXPECT_STREQ(alloc->name(), allocator_kind_name(kind));
    EXPECT_EQ(allocator_kind_from_string(allocator_kind_name(kind)), kind);
  }
  EXPECT_FALSE(allocator_kind_from_string("bogus").has_value());
}

TEST(AllocatorFactoryTest, JobawareEnvSwitch) {
  // Mirrors §5.2: unset -> stock allocator; set -> the proposed algorithm.
  unsetenv("JOBAWARE");
  EXPECT_EQ(allocator_kind_from_env(), AllocatorKind::kDefault);
  setenv("JOBAWARE", "balanced", 1);
  EXPECT_EQ(allocator_kind_from_env(), AllocatorKind::kBalanced);
  setenv("JOBAWARE", "1", 1);
  EXPECT_EQ(allocator_kind_from_env(), AllocatorKind::kAdaptive);
  setenv("JOBAWARE", "nonsense", 1);
  EXPECT_THROW(allocator_kind_from_env(), InvariantError);
  unsetenv("JOBAWARE");
}

}  // namespace
}  // namespace commsched
