// Differential tests for the delta-cost session (DESIGN.md "Delta-cost
// evaluation & search allocators"): every cost_delta over fuzzed move
// sequences must agree BIT-FOR-BIT (EXPECT_EQ on doubles, not near) with a
// full candidate_cost recompute of the moved placement, across the paper's
// five patterns, fragmented and contiguous shapes, rank expansion, hop-byte
// weighting, and the candidate-overlay toggle — with commits interleaved so
// both tentative and committed bases are exercised.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

constexpr Pattern kAllPatterns[] = {
    Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
    Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};

// Shadow of one delta session kept by the test: slot -> leaf plus the node
// counts, from which any assignment can be materialized into a node list
// for the independent full recompute.
struct ShadowPlacement {
  std::vector<SwitchId> slot_leaf;
  std::vector<int> slot_nnodes;
  std::vector<std::int32_t> run_slots;  // shape runs, slot per run
  std::vector<int> run_counts;
};

// Rebuild a node list whose slot -> leaf mapping is `leaf_of_slot`,
// replaying the shape's runs and drawing each slot's nodes from its leaf in
// ascending node-id order. Which concrete nodes a slot holds inside a leaf
// is irrelevant to Eq. 2-6 (contention is per leaf), but the list must be
// duplicate-free, which the pairwise-distinct-leaves invariant guarantees.
std::vector<NodeId> materialize(const Tree& tree,
                                const ShadowPlacement& shadow,
                                const std::vector<SwitchId>& leaf_of_slot) {
  std::vector<int> cursor(shadow.slot_leaf.size(), 0);
  std::vector<NodeId> out;
  for (std::size_t r = 0; r < shadow.run_slots.size(); ++r) {
    const auto s = static_cast<std::size_t>(shadow.run_slots[r]);
    const auto leaf_nodes = tree.nodes_of_leaf(leaf_of_slot[s]);
    for (int c = 0; c < shadow.run_counts[r]; ++c)
      out.push_back(leaf_nodes[static_cast<std::size_t>(cursor[s]++)]);
  }
  return out;
}

ShadowPlacement shadow_of(const CostModel& model, const CostWorkspace& ws,
                          const ShapeKey& shape) {
  ShadowPlacement shadow;
  shadow.slot_leaf.resize(static_cast<std::size_t>(shape.num_slots));
  shadow.slot_nnodes.resize(static_cast<std::size_t>(shape.num_slots));
  for (std::int32_t s = 0; s < shape.num_slots; ++s) {
    shadow.slot_leaf[static_cast<std::size_t>(s)] = model.delta_slot_leaf(ws, s);
    shadow.slot_nnodes[static_cast<std::size_t>(s)] =
        model.delta_slot_nnodes(ws, s);
  }
  for (const auto& [slot, count] : shape.runs) {
    shadow.run_slots.push_back(slot);
    shadow.run_counts.push_back(count);
  }
  return shadow;
}

// Draw a feasible move set against `leaf_of_slot`: mostly single-slot
// reassignments to a slot-free leaf, sometimes a two-slot swap.
std::size_t draw_moves(Rng& rng, const Tree& tree,
                       const std::vector<SwitchId>& leaf_of_slot,
                       std::array<SlotMove, kMaxDeltaMoves>& moves) {
  const auto k = static_cast<std::int64_t>(leaf_of_slot.size());
  const bool swap = k >= 2 && rng.bernoulli(0.3);
  if (swap) {
    const auto a = rng.uniform_int(0, k - 1);
    auto b = rng.uniform_int(0, k - 2);
    if (b >= a) ++b;
    moves[0] = {static_cast<std::int32_t>(a),
                leaf_of_slot[static_cast<std::size_t>(b)]};
    moves[1] = {static_cast<std::int32_t>(b),
                leaf_of_slot[static_cast<std::size_t>(a)]};
    return 2;
  }
  const auto s = rng.uniform_int(0, k - 1);
  // Uniform over leaves no slot occupies (k < leaf_count by construction).
  for (;;) {
    const auto leaves = tree.leaves();
    const auto t = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(leaves.size()) - 1));
    const SwitchId target = leaves[t];
    bool occupied = false;
    for (const SwitchId leaf : leaf_of_slot) occupied |= (leaf == target);
    if (occupied) continue;
    moves[0] = {static_cast<std::int32_t>(s), target};
    return 1;
  }
}

// 8 leaves x 4 nodes; background jobs load some leaves unevenly so Eq. 2/3
// contention differs per leaf and moves genuinely change the cost.
class CostDeltaFixture : public ::testing::Test {
 protected:
  CostDeltaFixture() : tree_(make_two_level_tree(8, 4)), state_(tree_) {
    state_.allocate(100, /*comm=*/true, std::vector<NodeId>{0, 1, 2});
    state_.allocate(101, /*comm=*/false, std::vector<NodeId>{4, 5});
    state_.allocate(102, /*comm=*/true, std::vector<NodeId>{8, 9, 10, 11});
    state_.allocate(103, /*comm=*/true, std::vector<NodeId>{20, 21});
  }

  Tree tree_;
  ClusterState state_;
};

TEST_F(CostDeltaFixture, FuzzedMoveSequencesMatchFullRecomputeBitForBit) {
  const struct {
    const char* name;
    std::vector<NodeId> seed;
  } shapes[] = {
      // One leaf, rank-contiguous.
      {"contiguous", {12, 13, 14, 15}},
      // Three leaves, runs of length 1-2 with a revisit of the first leaf.
      {"fragmented", {16, 24, 17, 28, 29, 18}},
  };
  for (const Pattern pattern : kAllPatterns)
    for (const auto& shape_case : shapes)
      for (const int rpn : {1, 2})
        for (const bool hop_bytes : {false, true})
          for (const bool include_candidate : {true, false}) {
            const std::string label =
                std::string(pattern_name(pattern)) + "/" + shape_case.name +
                "/rpn=" + std::to_string(rpn) +
                (hop_bytes ? "/hop-bytes" : "/hops") +
                (include_candidate ? "/overlay" : "/no-overlay");
            const CostModel model(
                tree_, CostOptions{.hop_bytes = hop_bytes,
                                   .include_candidate = include_candidate});
            const ShapeKey shape = make_shape_key(tree_, shape_case.seed);
            const LeafCommProfile profile =
                make_leaf_comm_profile(pattern, 1024.0, shape, rpn);

            CostWorkspace ws;        // session under test
            CostWorkspace full_ws;   // oracle scratch
            const double begin = model.delta_begin(
                state_, shape_case.seed, /*comm_intensive=*/true, profile, ws);
            EXPECT_EQ(begin,
                      model.candidate_cost(state_, shape_case.seed, true,
                                           profile, full_ws))
                << label;

            const ShadowPlacement shadow = shadow_of(model, ws, shape);
            std::vector<SwitchId> committed = shadow.slot_leaf;
            Rng rng(splitmix64(0x5eedf00d ^
                               static_cast<std::uint64_t>(pattern) * 131 +
                               static_cast<std::uint64_t>(rpn)));
            std::array<SlotMove, kMaxDeltaMoves> moves{};
            bool pending = false;
            std::vector<SwitchId> tentative;
            for (int it = 0; it < 40; ++it) {
              const std::size_t count =
                  draw_moves(rng, tree_, committed, moves);
              tentative = committed;
              for (std::size_t m = 0; m < count; ++m)
                tentative[static_cast<std::size_t>(moves[m].slot)] =
                    moves[m].leaf;
              const double delta = model.cost_delta(
                  state_, std::span<const SlotMove>(moves.data(), count), ws);
              const auto moved_nodes =
                  materialize(tree_, shadow, tentative);
              EXPECT_EQ(delta, model.candidate_cost(state_, moved_nodes, true,
                                                    profile, full_ws))
                  << label << "/it=" << it;
              pending = true;
              // Commit roughly half the evaluations; the rest stay
              // tentative and must be discarded by the next evaluation.
              if (rng.bernoulli(0.5)) {
                model.delta_commit(ws);
                committed = tentative;
                EXPECT_EQ(model.delta_total(ws),
                          model.candidate_cost(state_, moved_nodes, true,
                                               profile, full_ws))
                    << label << "/it=" << it;
                pending = false;
              }
            }
            (void)pending;
            // The committed base is still priced exactly after the walk.
            EXPECT_EQ(model.delta_total(ws),
                      model.candidate_cost(
                          state_, materialize(tree_, shadow, committed), true,
                          profile, full_ws))
                << label;
          }
}

TEST_F(CostDeltaFixture, BeginMatchesFullForComputeJobsToo) {
  // comm_intensive=false: no overlay on either path.
  const std::vector<NodeId> seed{16, 24, 17, 28};
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  const ShapeKey shape = make_shape_key(tree_, seed);
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kRing, 512.0, shape, 1);
  CostWorkspace ws;
  EXPECT_EQ(model.delta_begin(state_, seed, /*comm_intensive=*/false, profile,
                              ws),
            model.candidate_cost(state_, seed, false, profile));
}

TEST_F(CostDeltaFixture, SessionMisuseTripsInvariants) {
  const std::vector<NodeId> seed{12, 13, 16, 17};
  const CostModel model(tree_, CostOptions{});
  const ShapeKey shape = make_shape_key(tree_, seed);
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kBinomial, 256.0, shape, 1);
  CostWorkspace ws;

  // No active session.
  const SlotMove move{0, tree_.leaves()[7]};
  EXPECT_THROW(model.cost_delta(state_, std::span<const SlotMove>(&move, 1),
                                ws),
               InvariantError);
  EXPECT_THROW(model.delta_commit(ws), InvariantError);

  ASSERT_GT(model.delta_begin(state_, seed, true, profile, ws), 0.0);
  // Commit without a pending evaluation.
  EXPECT_THROW(model.delta_commit(ws), InvariantError);
  // Two slots on the same leaf violates the distinct-leaves invariant.
  const SlotMove collide{1, model.delta_slot_leaf(ws, 0)};
  EXPECT_THROW(
      model.cost_delta(state_, std::span<const SlotMove>(&collide, 1), ws),
      InvariantError);
}

TEST_F(CostDeltaFixture, LongWalkOnWiderMachineStaysExact) {
  // A deeper fuzz on one configuration: 200 moves through a 16-leaf tree
  // with a 5-slot pairwise-alltoall job, committing aggressively.
  const Tree tree = make_two_level_tree(16, 4);
  ClusterState state(tree);
  state.allocate(1, /*comm=*/true, std::vector<NodeId>{0, 1, 4, 5, 6});
  state.allocate(2, /*comm=*/true, std::vector<NodeId>{16, 17, 18});
  const std::vector<NodeId> seed{8, 9, 12, 20, 24, 25, 28, 33};
  const CostModel model(tree, CostOptions{.hop_bytes = true});
  const ShapeKey shape = make_shape_key(tree, seed);
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kPairwiseAlltoall, 64.0, shape, 2);

  CostWorkspace ws, full_ws;
  model.delta_begin(state, seed, true, profile, ws);
  const ShadowPlacement shadow = shadow_of(model, ws, shape);
  std::vector<SwitchId> committed = shadow.slot_leaf;
  Rng rng(20200817);
  std::array<SlotMove, kMaxDeltaMoves> moves{};
  for (int it = 0; it < 200; ++it) {
    const std::size_t count = draw_moves(rng, tree, committed, moves);
    auto tentative = committed;
    for (std::size_t m = 0; m < count; ++m)
      tentative[static_cast<std::size_t>(moves[m].slot)] = moves[m].leaf;
    const double delta = model.cost_delta(
        state, std::span<const SlotMove>(moves.data(), count), ws);
    ASSERT_EQ(delta,
              model.candidate_cost(state, materialize(tree, shadow, tentative),
                                   true, profile, full_ws))
        << "it=" << it;
    if (rng.bernoulli(0.8)) {
      model.delta_commit(ws);
      committed = tentative;
    }
  }
}

}  // namespace
}  // namespace commsched
