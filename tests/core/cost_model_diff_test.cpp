// Differential test of the leaf-aggregated fast cost kernel against the
// pair-by-pair reference implementation (cost_impl_reference): randomized
// trees (varying fan-out and depth, irregular leaf sizes), random background
// load, random allocations (including multi-rank expansions), all five
// Pattern schedules, both CostOptions flags, and both the committed
// (allocation_cost) and candidate/LeafOverlay (candidate_cost) paths. The
// two kernels perform the same floating-point operations in the same order,
// so the results must agree bit-for-bit; we assert EXPECT_DOUBLE_EQ (4 ulps)
// which is stricter than the 1e-12 acceptance bound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/tree.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

constexpr Pattern kAllPatterns[] = {
    Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
    Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};

// Random tree: depth 2 or 3, irregular fan-out, irregular leaf sizes.
Tree random_tree(Rng& rng) {
  TreeBuilder builder;
  const bool three_level = rng.bernoulli(0.5);
  int node = 0;
  int leaf = 0;
  if (!three_level) {
    const int leaves = static_cast<int>(rng.uniform_int(2, 10));
    std::vector<SwitchId> leaf_ids;
    for (int l = 0; l < leaves; ++l) {
      const int width = static_cast<int>(rng.uniform_int(1, 8));
      std::vector<std::string> names;
      for (int n = 0; n < width; ++n) names.push_back("n" + std::to_string(node++));
      leaf_ids.push_back(builder.add_leaf("s" + std::to_string(leaf++), names));
    }
    builder.add_switch("root", leaf_ids);
  } else {
    const int groups = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<SwitchId> group_ids;
    for (int g = 0; g < groups; ++g) {
      const int leaves = static_cast<int>(rng.uniform_int(1, 4));
      std::vector<SwitchId> leaf_ids;
      for (int l = 0; l < leaves; ++l) {
        const int width = static_cast<int>(rng.uniform_int(1, 6));
        std::vector<std::string> names;
        for (int n = 0; n < width; ++n)
          names.push_back("n" + std::to_string(node++));
        leaf_ids.push_back(builder.add_leaf("s" + std::to_string(leaf++), names));
      }
      group_ids.push_back(
          builder.add_switch("g" + std::to_string(g), leaf_ids));
    }
    builder.add_switch("root", group_ids);
  }
  return builder.build();
}

// Random background load: some communication-intensive, some not.
void random_occupy(ClusterState& state, Rng& rng) {
  JobId job = 1'000;
  std::vector<NodeId> comm_nodes, quiet_nodes;
  for (NodeId n = 0; n < state.tree().node_count(); ++n) {
    const double p = rng.uniform_real(0.0, 1.0);
    if (p < 0.25)
      comm_nodes.push_back(n);
    else if (p < 0.45)
      quiet_nodes.push_back(n);
  }
  if (!comm_nodes.empty()) state.allocate(job++, /*comm=*/true, comm_nodes);
  if (!quiet_nodes.empty()) state.allocate(job++, /*comm=*/false, quiet_nodes);
}

// Random rank -> node map over the whole machine (any nodes, free or busy:
// the cost arithmetic does not depend on availability). Multi-rank variants
// repeat nodes, exercising the same-node zero-hop short-circuit.
std::vector<NodeId> random_allocation(const Tree& tree, Rng& rng, int nranks,
                                      bool multirank) {
  const auto picks = rng.sample_without_replacement(
      static_cast<std::size_t>(tree.node_count()),
      std::min<std::size_t>(static_cast<std::size_t>(nranks),
                            static_cast<std::size_t>(tree.node_count())));
  std::vector<NodeId> nodes;
  for (const std::size_t p : picks) nodes.push_back(static_cast<NodeId>(p));
  if (multirank) {
    const int rpn = 2;
    nodes = expand_ranks_per_node(nodes, rpn);
    nodes.resize(static_cast<std::size_t>(nranks), nodes.front());
  } else {
    while (static_cast<int>(nodes.size()) < nranks)
      nodes.push_back(nodes.back());  // saturate tiny machines with repeats
  }
  nodes.resize(static_cast<std::size_t>(nranks));
  rng.shuffle(nodes);
  return nodes;
}

TEST(CostModelDiffTest, FastKernelMatchesReferenceEverywhere) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(0xC05'7D1FF + seed);
    const Tree tree = random_tree(rng);
    ClusterState state(tree);
    random_occupy(state, rng);

    for (const bool hop_bytes : {false, true}) {
      for (const bool include_candidate : {false, true}) {
        const CostModel model(tree, CostOptions{
                                        .hop_bytes = hop_bytes,
                                        .include_candidate = include_candidate,
                                    });
        for (const Pattern pattern : kAllPatterns) {
          const int nranks = static_cast<int>(
              rng.uniform_int(2, 2 * tree.node_count()));
          const bool multirank = rng.bernoulli(0.3);
          const auto nodes = random_allocation(tree, rng, nranks, multirank);
          const auto schedule =
              make_schedule(pattern, nranks, rng.uniform_real(1.0, 4096.0));

          SCOPED_TRACE("seed=" + std::to_string(seed) + " pattern=" +
                       pattern_name(pattern) + " nranks=" +
                       std::to_string(nranks) +
                       " hop_bytes=" + std::to_string(hop_bytes) +
                       " include_candidate=" +
                       std::to_string(include_candidate) +
                       " multirank=" + std::to_string(multirank));

          EXPECT_DOUBLE_EQ(
              model.allocation_cost(state, nodes, schedule),
              model.allocation_cost_reference(state, nodes, schedule));
          for (const bool comm_intensive : {false, true}) {
            EXPECT_DOUBLE_EQ(model.candidate_cost(state, nodes,
                                                  comm_intensive, schedule),
                             model.candidate_cost_reference(
                                 state, nodes, comm_intensive, schedule));
          }
        }
      }
    }
  }
}

// The kernel's scratch buffers are member state reused across calls; verify
// interleaving calls with different allocations, schedules and overlay modes
// on ONE model instance never contaminates a later result.
TEST(CostModelDiffTest, ScratchReuseAcrossInterleavedCalls) {
  Rng rng(2026'08'06);
  const Tree tree = random_tree(rng);
  ClusterState state(tree);
  random_occupy(state, rng);
  const CostModel model(tree, CostOptions{.hop_bytes = true});

  struct Query {
    std::vector<NodeId> nodes;
    CommSchedule schedule;
    bool comm_intensive = false;
    double expected = 0.0;
  };
  std::vector<Query> queries;
  for (int q = 0; q < 24; ++q) {
    Query query;
    const int nranks = static_cast<int>(rng.uniform_int(2, tree.node_count()));
    query.nodes = random_allocation(tree, rng, nranks, rng.bernoulli(0.5));
    query.schedule = make_schedule(
        kAllPatterns[static_cast<std::size_t>(q) % std::size(kAllPatterns)],
        nranks, 64.0);
    query.comm_intensive = rng.bernoulli(0.5);
    query.expected = model.candidate_cost_reference(
        state, query.nodes, query.comm_intensive, query.schedule);
    queries.push_back(std::move(query));
  }
  // Two interleaved passes: every call must reproduce its reference value
  // regardless of what the previous call left in the scratch.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Query& query : queries) {
      EXPECT_DOUBLE_EQ(model.candidate_cost(state, query.nodes,
                                            query.comm_intensive,
                                            query.schedule),
                       query.expected);
    }
  }
}

}  // namespace
}  // namespace commsched
