// Parameterized invariants of the Eqs. 2-6 cost machinery across machines,
// patterns, job sizes and background load:
//   1. non-negativity, and zero only for <2-rank jobs;
//   2. monotonicity: extra communication-intensive background load never
//      lowers any candidate's cost (contention only ever adds);
//   3. self-inclusion dominance: pricing a comm candidate with its own
//      nodes counted is never cheaper than without;
//   4. additivity: the cost of a concatenated schedule is the sum of its
//      parts;
//   5. hop-bytes consistency: with unit message sizes the weighted and
//      unweighted variants agree.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cluster/state.hpp"
#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

struct Case {
  const char* machine;
  Pattern pattern;
  int job_nodes;
  std::uint64_t seed;

  friend void PrintTo(const Case& c, std::ostream* os) {
    *os << c.machine << '/' << pattern_name(c.pattern) << "/n"
        << c.job_nodes << "/seed" << c.seed;
  }
};

class CostPropertySweep : public ::testing::TestWithParam<Case> {
 protected:
  void occupy(ClusterState& state, double fraction, std::uint64_t seed,
              bool comm) {
    Rng rng(seed);
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < state.tree().node_count(); ++n)
      if (state.is_free(n) && rng.bernoulli(fraction)) nodes.push_back(n);
    if (!nodes.empty()) state.allocate(next_job_++, comm, nodes);
  }
  JobId next_job_ = 1;
};

TEST_P(CostPropertySweep, Invariants) {
  const Case& param = GetParam();
  const Tree tree = make_machine(param.machine);
  ClusterState state(tree);
  occupy(state, 0.3, param.seed, /*comm=*/true);
  if (state.total_free() < param.job_nodes) GTEST_SKIP();

  AllocationRequest request;
  request.job = 999;
  request.num_nodes = param.job_nodes;
  request.comm_intensive = true;
  request.pattern = param.pattern;
  const auto allocator = make_allocator(AllocatorKind::kBalanced);
  const auto nodes = allocator->select(state, request);
  ASSERT_TRUE(nodes.has_value());

  const auto schedule = make_schedule(param.pattern, param.job_nodes, 1.0);
  const CostModel model(tree);

  // (1) non-negativity / zero cases.
  const double cost = model.candidate_cost(state, *nodes, true, schedule);
  if (param.job_nodes >= 2) {
    EXPECT_GT(cost, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(cost, 0.0);
  }

  // (3) self-inclusion dominance.
  const CostModel no_self(tree, CostOptions{.include_candidate = false});
  EXPECT_GE(cost + 1e-12,
            no_self.candidate_cost(state, *nodes, true, schedule));

  // (2) background-load monotonicity.
  const double before = cost;
  occupy(state, 0.3, param.seed + 1, /*comm=*/true);
  const double after = model.candidate_cost(state, *nodes, true, schedule);
  EXPECT_GE(after + 1e-12, before);

  // (4) additivity over schedule concatenation.
  CommSchedule doubled = schedule;
  doubled.insert(doubled.end(), schedule.begin(), schedule.end());
  EXPECT_NEAR(model.candidate_cost(state, *nodes, true, doubled), 2.0 * after,
              1e-9 * (1.0 + after));

  // (5) hop-bytes equals hops at unit message sizes.
  const CostModel weighted(tree, CostOptions{.hop_bytes = true});
  EXPECT_NEAR(weighted.candidate_cost(state, *nodes, true, schedule),
              [&] {
                double expected = 0.0;
                CommSchedule unit = schedule;
                // msize is 1.0 already (constructed with base 1.0) for RD,
                // binomial, ring; RHVD doubles per step, so compare against
                // an explicit per-step weighting instead.
                for (std::size_t s = 0; s < unit.size(); ++s) {
                  CommSchedule one{unit[s]};
                  expected += model.candidate_cost(state, *nodes, true, one) *
                              unit[s].msize;
                }
                return expected;
              }(),
              1e-6 * (1.0 + after));
}

std::vector<Case> cases() {
  std::vector<Case> out;
  const Pattern patterns[] = {Pattern::kRecursiveDoubling,
                              Pattern::kRecursiveHalvingVD, Pattern::kBinomial,
                              Pattern::kRing};
  for (const char* machine : {"figure2", "department", "iitk"})
    for (const Pattern p : patterns)
      for (const int size : {1, 2, 5, 8, 16})
        for (const std::uint64_t seed : {11u, 22u})
          out.push_back({machine, p, size, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Machines, CostPropertySweep,
                         ::testing::ValuesIn(cases()));

}  // namespace
}  // namespace commsched
