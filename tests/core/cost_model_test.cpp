#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "collectives/schedule.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

// The paper's Figure 5 scenario: Job1 (comm) on n0,n1,n4,n5; Job2 (comm) on
// n2,n3; n6,n7 free — on the Figure 2 fat-tree.
class Figure5Fixture : public ::testing::Test {
 protected:
  Figure5Fixture() : tree_(make_figure2_tree()), state_(tree_), model_(tree_) {
    state_.allocate(1, /*comm=*/true, std::vector<NodeId>{0, 1, 4, 5});
    state_.allocate(2, /*comm=*/true, std::vector<NodeId>{2, 3});
  }
  Tree tree_;
  ClusterState state_;
  CostModel model_;
};

TEST_F(Figure5Fixture, SameLeafContentionMatchesPaper) {
  // C(n0, n1) = 4/4 = 1 (Eq. 2).
  EXPECT_DOUBLE_EQ(model_.contention(state_, 0, 1), 1.0);
}

TEST_F(Figure5Fixture, CrossLeafContentionMatchesPaper) {
  // C(n0, n4) = 4/4 + 2/4 + 0.5*(4+2)/(4+4) = 1.875 (Eq. 3).
  EXPECT_DOUBLE_EQ(model_.contention(state_, 0, 4), 1.875);
}

TEST_F(Figure5Fixture, EffectiveHopsMatchPaper) {
  // Hops(n0,n1) = 2*(1+1) = 4 and Hops(n0,n4) = 4*(1+1.875) = 11.5 (Eq. 5).
  EXPECT_DOUBLE_EQ(model_.effective_hops(state_, 0, 1), 4.0);
  EXPECT_DOUBLE_EQ(model_.effective_hops(state_, 0, 4), 11.5);
}

TEST_F(Figure5Fixture, SelfHopsAreZero) {
  EXPECT_DOUBLE_EQ(model_.effective_hops(state_, 3, 3), 0.0);
}

TEST_F(Figure5Fixture, ContentionIsSymmetric) {
  EXPECT_DOUBLE_EQ(model_.contention(state_, 0, 4),
                   model_.contention(state_, 4, 0));
}

TEST_F(Figure5Fixture, AllocationCostSumsPerStepMaxima) {
  // Job1's 4 nodes (n0,n1,n4,n5) with RD over 4 ranks: step 0 pairs
  // (0,1),(2,3) -> nodes (n0,n1),(n4,n5); step 1 pairs (0,2),(1,3) ->
  // (n0,n4),(n1,n5).
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  const std::vector<NodeId> nodes{0, 1, 4, 5};
  // Step 0 max: Hops(n0,n1) = 4 vs Hops(n4,n5) = 2*(1+2/4) = 3 -> 4.
  // Step 1: both pairs cross leaves -> Hops = 11.5.
  const double cost = model_.allocation_cost(state_, nodes, schedule);
  EXPECT_DOUBLE_EQ(cost, 4.0 + 11.5);
}

TEST_F(Figure5Fixture, HopBytesVariantWeightsByMessageSize) {
  CostModel hb(tree_, CostOptions{.hop_bytes = true});
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 4, 3.0);
  const std::vector<NodeId> nodes{0, 1, 4, 5};
  EXPECT_DOUBLE_EQ(hb.allocation_cost(state_, nodes, schedule),
                   (4.0 + 11.5) * 3.0);
}

TEST(CostModelTest, CandidateOverlayCountsTheJobItself) {
  // Empty cluster: a candidate comm job's own nodes must create contention
  // (the Figure 5 arithmetic includes the job under consideration).
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 2, 1.0);
  const std::vector<NodeId> nodes{0, 1};
  // With overlay: C = 2/4 = 0.5 -> hops = 2*1.5 = 3.
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, nodes, true, schedule), 3.0);
  // Committed-state pricing of the same pair on the empty cluster: C = 0.
  EXPECT_DOUBLE_EQ(model.allocation_cost(state, nodes, schedule), 2.0);
}

TEST(CostModelTest, ComputeCandidateAddsNoContention) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 2, 1.0);
  const std::vector<NodeId> nodes{0, 1};
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, nodes, false, schedule), 2.0);
}

TEST(CostModelTest, IncludeCandidateOptionCanBeDisabled) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree, CostOptions{.include_candidate = false});
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 2, 1.0);
  const std::vector<NodeId> nodes{0, 1};
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, nodes, true, schedule), 2.0);
}

TEST(CostModelTest, MoreNeighborCommJobsRaiseContention) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  const CostModel model(tree);
  const double before = model.contention(state, 0, 1);
  state.allocate(1, true, std::vector<NodeId>{2, 3});
  const double after = model.contention(state, 0, 1);
  EXPECT_GT(after, before);
  // Compute-intensive neighbors do not add contention (Eq. 2 uses L_comm).
  state.allocate(2, false, std::vector<NodeId>{0});
  EXPECT_DOUBLE_EQ(model.contention(state, 0, 1), after);
}

TEST(CostModelTest, CrossLeafCostsExceedSameLeafUnderEqualLoad) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 4});
  const CostModel model(tree);
  EXPECT_GT(model.effective_hops(state, 0, 4), model.effective_hops(state, 0, 1));
}

TEST(CostModelTest, RepeatedStepsScaleCost) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const auto ring = make_schedule(Pattern::kRing, 4, 1.0);  // repeat = 3
  const std::vector<NodeId> nodes{0, 1, 2, 3};
  const double one_round =
      model.effective_hops(state, 0, 1);  // all pairs same leaf, C = 0 -> 2
  EXPECT_DOUBLE_EQ(model.allocation_cost(state, nodes, ring), 3 * one_round);
}

TEST(CostModelTest, ThreeLevelDistancesEnterCost) {
  const Tree tree = make_three_level_tree(2, 2, 4);
  const ClusterState state(tree);
  const CostModel model(tree);
  // No load anywhere: hops reduce to pure distance.
  EXPECT_DOUBLE_EQ(model.effective_hops(state, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(model.effective_hops(state, 0, 5), 4.0);
  EXPECT_DOUBLE_EQ(model.effective_hops(state, 0, 12), 6.0);
}

TEST(CostModelTest, ScheduleRankOutOfRangeThrows) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  const std::vector<NodeId> nodes{0, 1};  // too few nodes for 4 ranks
  EXPECT_THROW(model.allocation_cost(state, nodes, schedule), InvariantError);
}

TEST(LeafOverlayTest, AddAndClear) {
  const Tree tree = make_figure2_tree();
  LeafOverlay overlay(tree);
  const SwitchId s0 = *tree.switch_by_name("s0");
  const SwitchId s1 = *tree.switch_by_name("s1");
  EXPECT_EQ(overlay.extra_comm(s0), 0);
  overlay.add_nodes(tree, std::vector<NodeId>{0, 1, 4});
  EXPECT_EQ(overlay.extra_comm(s0), 2);
  EXPECT_EQ(overlay.extra_comm(s1), 1);
  overlay.clear();
  EXPECT_EQ(overlay.extra_comm(s0), 0);
  EXPECT_EQ(overlay.extra_comm(s1), 0);
}

}  // namespace
}  // namespace commsched
