// Differential tests for the LeafCommProfile cost path (DESIGN.md "Shape
// canonicalization & CommCache"): profile-based Eq. 6 evaluation must agree
// BIT-FOR-BIT (EXPECT_EQ on doubles, not near) with both the leaf-aggregated
// schedule kernel and the pair-by-pair reference, across every pattern,
// power-of-two and ragged sizes, contiguous/fragmented/multi-leaf shapes,
// and multi-rank expansion.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

constexpr Pattern kAllPatterns[] = {
    Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
    Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};

// 4 leaves x 8 nodes; background jobs load three leaves unevenly so Eq. 2/3
// contention differs per leaf (leaf 3 left idle).
class ProfileDiffFixture : public ::testing::Test {
 protected:
  ProfileDiffFixture() : tree_(make_two_level_tree(4, 8)), state_(tree_) {
    state_.allocate(100, /*comm=*/true, std::vector<NodeId>{0, 1, 2});
    state_.allocate(101, /*comm=*/false, std::vector<NodeId>{8, 9});
    state_.allocate(102, /*comm=*/true,
                    std::vector<NodeId>{16, 17, 18, 19, 20});
  }

  Tree tree_;
  ClusterState state_;
};

TEST_F(ProfileDiffFixture, ProfileMatchesReferenceAndFastKernelBitForBit) {
  const struct {
    const char* name;
    std::vector<NodeId> nodes;
  } shapes[] = {
      // One free leaf, rank-contiguous.
      {"contiguous", {24, 25, 26, 27, 28, 29, 30, 31}},
      // Scattered free nodes, leaf runs of length 1-3 with revisits.
      {"fragmented", {3, 5, 10, 7, 12, 14, 21, 23}},
      // Block per leaf across all four leaves.
      {"multi-leaf", {6, 7, 14, 15, 22, 23, 30, 31}},
  };
  for (const Pattern pattern : kAllPatterns)
    for (const auto& shape_case : shapes)
      for (const int n : {8, 7})  // power of two and ragged
        for (const int rpn : {1, 4})
          for (const bool hop_bytes : {false, true}) {
            const std::string label =
                std::string(pattern_name(pattern)) + "/" + shape_case.name +
                "/n=" + std::to_string(n) + "/rpn=" + std::to_string(rpn) +
                (hop_bytes ? "/hop-bytes" : "/hops");
            std::vector<NodeId> nodes(shape_case.nodes.begin(),
                                      shape_case.nodes.begin() + n);
            const CostModel model(tree_,
                                  CostOptions{.hop_bytes = hop_bytes});
            const double msize = 1024.0;
            const int nprocs = n * rpn;
            const auto schedule = make_schedule(pattern, nprocs, msize);
            const auto expanded = expand_ranks_per_node(nodes, rpn);
            const LeafCommProfile profile = make_leaf_comm_profile(
                pattern, msize, make_shape_key(tree_, nodes), rpn);

            // Committed-allocation pricing: profile vs fast kernel vs
            // pair-by-pair reference.
            const double via_profile =
                model.allocation_cost(state_, nodes, profile);
            EXPECT_EQ(via_profile, model.allocation_cost_reference(
                                       state_, expanded, schedule))
                << label;
            EXPECT_EQ(via_profile,
                      model.allocation_cost(state_, expanded, schedule))
                << label;

            // Candidate pricing, with and without the self-overlay.
            for (const bool comm : {true, false}) {
              EXPECT_EQ(
                  model.candidate_cost(state_, nodes, comm, profile),
                  model.candidate_cost_reference(state_, expanded, comm,
                                                 schedule))
                  << label << "/comm=" << comm;
            }
          }
}

TEST_F(ProfileDiffFixture, CachedProfileStaysCorrectAsStateMutates) {
  // A profile captures only schedule-on-shape structure — no cluster state —
  // so a cache entry built before other jobs come and go must keep pricing
  // correctly against the *current* state.
  const std::vector<NodeId> nodes{12, 13, 14, 15};
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  CommCache cache(512.0);
  const auto& schedule = cache.schedule(Pattern::kPairwiseAlltoall, 4);
  const LeafCommProfile& profile = cache.profile(
      Pattern::kPairwiseAlltoall, 1, make_shape_key(tree_, nodes));

  EXPECT_EQ(model.candidate_cost(state_, nodes, true, profile),
            model.candidate_cost_reference(state_, nodes, true, schedule));

  state_.allocate(200, /*comm=*/true, std::vector<NodeId>{10, 11});
  const double loaded = model.candidate_cost(state_, nodes, true, profile);
  EXPECT_EQ(loaded,
            model.candidate_cost_reference(state_, nodes, true, schedule));

  state_.release(200);
  EXPECT_EQ(model.candidate_cost(state_, nodes, true, profile),
            model.candidate_cost_reference(state_, nodes, true, schedule));
  EXPECT_EQ(cache.stats().profile_misses, 1u);  // one entry served all three
  EXPECT_GT(loaded, 0.0);
}

TEST_F(ProfileDiffFixture, OneModelManyThreadsWithPrivateWorkspaces) {
  // One shared CostModel + one pre-warmed profile, each thread bringing its
  // own CostWorkspace: every concurrent evaluation must reproduce the
  // single-threaded value exactly.
  const std::vector<NodeId> nodes{6, 7, 14, 15, 22, 23, 30, 31};
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  CommCache cache(256.0);
  const LeafCommProfile& profile = cache.profile(
      Pattern::kPairwiseAlltoall, 4, make_shape_key(tree_, nodes));
  const double expected = model.candidate_cost(state_, nodes, true, profile);
  ASSERT_GT(expected, 0.0);

  constexpr int kThreads = 4, kIters = 200;
  std::vector<std::vector<double>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        CostWorkspace workspace;  // per-thread scratch
        results[t].reserve(kIters);
        for (int i = 0; i < kIters; ++i)
          results[t].push_back(model.candidate_cost(state_, nodes, true,
                                                    profile, workspace));
      });
    for (auto& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t)
    for (const double got : results[t]) EXPECT_EQ(got, expected);
}

TEST(CostProfileLargeTest, FourThousandRankAlltoallMatchesStreamedReference) {
  // 8 nodes x 512 ranks/node = 4096 ranks — the profile path's whole point.
  // The reference here is computed inside the test by streaming the schedule
  // and calling effective_hops per rank pair (overlaying the candidate's own
  // ranks), i.e. straight Eq. 6 with no shared kernel code beyond Eq. 5.
  const Tree tree = make_two_level_tree(2, 4);
  const ClusterState state(tree);
  const int rpn = 512;
  std::vector<NodeId> nodes(8);
  for (int i = 0; i < 8; ++i) nodes[i] = static_cast<NodeId>(i);
  const double msize = 4.0;

  const CostModel model(tree, CostOptions{.hop_bytes = true});
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kPairwiseAlltoall, msize, make_shape_key(tree, nodes), rpn);
  EXPECT_EQ(profile.nprocs, 4096);
  const double via_profile =
      model.candidate_cost(state, nodes, /*comm_intensive=*/true, profile);

  const auto expanded = expand_ranks_per_node(nodes, rpn);
  LeafOverlay overlay(tree);
  overlay.add_nodes(tree, nodes, rpn);
  double streamed = 0.0;
  for_each_schedule_step(
      Pattern::kPairwiseAlltoall, profile.nprocs, msize,
      [&](const CommStep& step) {
        double worst = 0.0;
        for (const auto& [ri, rj] : step.pairs)
          worst = std::max(worst, model.effective_hops(state, expanded[ri],
                                                       expanded[rj],
                                                       &overlay));
        streamed += worst * step.repeat * step.msize;
        return true;
      });
  EXPECT_EQ(via_profile, streamed);
  EXPECT_GT(via_profile, 0.0);
}

}  // namespace
}  // namespace commsched
