// DegradationModel lockdown (DESIGN.md "Dynamic interference"): the factor
// must be exactly 1 at zero co-located load (recovering the paper's static
// Eq. 7), monotone non-decreasing in every co-located job's load, clamped by
// RuntimeModelOptions::max_ratio, and the external-load term must be the
// node-weighted mean documented in the header — pinned against hand-computed
// values on small trees.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/state.hpp"
#include "core/degradation_model.hpp"
#include "core/runtime_model.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

class DegradationModelTest : public ::testing::Test {
 protected:
  DegradationModelTest()
      : tree_(make_two_level_tree(/*leaves=*/2, /*nodes_per_leaf=*/4)),
        state_(tree_),
        model_(tree_, DegradationOptions{.enabled = true, .alpha = 1.0},
               RuntimeModelOptions{}) {}

  Tree tree_;
  ClusterState state_;
  DegradationModel model_;
  DegradationWorkspace ws_;
};

TEST_F(DegradationModelTest, QuantizeLoadMatchesPriceCommSemantics) {
  EXPECT_EQ(DegradationModel::quantize_load(true, 1.0), kLoadUnitScale);
  EXPECT_EQ(DegradationModel::quantize_load(true, 0.5), kLoadUnitScale / 2);
  EXPECT_EQ(DegradationModel::quantize_load(true, 0.0), 0);
  // Compute-bound jobs carry no load no matter their comm fraction.
  EXPECT_EQ(DegradationModel::quantize_load(false, 0.9), 0);
}

TEST_F(DegradationModelTest, FactorIsExactlyOneAtZeroExternalLoad) {
  const std::vector<NodeId> nodes{0, 1};
  state_.allocate(1, true, nodes, false, kLoadUnitScale);
  // The job is alone on its leaf: its own contribution is excluded, so the
  // static Eq. 7 runtime is recovered exactly (not approximately).
  EXPECT_EQ(model_.external_load(state_, nodes, kLoadUnitScale, ws_), 0.0);
  EXPECT_EQ(model_.factor(state_, nodes, kLoadUnitScale, ws_), 1.0);
}

TEST_F(DegradationModelTest, FactorIsOneForZeroOwnLoad) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1}, false, kLoadUnitScale);
  // A compute-bound neighbour (own load 0) is not degraded by job 1.
  const std::vector<NodeId> mine{2, 3};
  EXPECT_EQ(model_.factor(state_, mine, 0, ws_), 1.0);
}

TEST_F(DegradationModelTest, ExternalLoadIsNodeWeightedMean) {
  // Job 1: 2 nodes on leaf s0, full load. Job 2: 1 node on leaf s0, half
  // load. For job 1 (own load excluded): others on s0 = 512; leaf has 4
  // attached nodes; all of job 1's nodes sit on s0 (weight 1).
  state_.allocate(1, true, std::vector<NodeId>{0, 1}, false, kLoadUnitScale);
  state_.allocate(2, true, std::vector<NodeId>{2}, false, kLoadUnitScale / 2);
  const std::vector<NodeId> job1{0, 1};
  const double expected =
      (static_cast<double>(kLoadUnitScale) / 2.0) /
      (static_cast<double>(kLoadUnitScale) * 4.0);  // 512 / (1024*4) = 0.125
  EXPECT_DOUBLE_EQ(model_.external_load(state_, job1, kLoadUnitScale, ws_),
                   expected);
  EXPECT_DOUBLE_EQ(model_.factor(state_, job1, kLoadUnitScale, ws_),
                   1.0 + expected);

  // A job straddling both leaves weights each leaf by its share of the
  // job's nodes: node 3 on the loaded s0, node 4 on the idle s1.
  const std::vector<NodeId> straddle{3, 4};
  const double ext =
      model_.external_load(state_, straddle, /*own_load=*/0, ws_);
  const double s0_per_node =
      static_cast<double>(kLoadUnitScale * 2 + kLoadUnitScale / 2) /
      (static_cast<double>(kLoadUnitScale) * 4.0);
  EXPECT_DOUBLE_EQ(ext, 0.5 * s0_per_node);
}

TEST_F(DegradationModelTest, FactorMonotoneInCoLocatedLoad) {
  const std::vector<NodeId> mine{0, 1};
  state_.allocate(1, true, mine, false, kLoadUnitScale);
  double prev = model_.factor(state_, mine, kLoadUnitScale, ws_);
  EXPECT_EQ(prev, 1.0);
  // Add neighbours of growing load; the factor must never decrease.
  for (int i = 0; i < 2; ++i) {
    state_.allocate(10 + i, true, std::vector<NodeId>{NodeId(2 + i)}, false,
                    (i + 1) * (kLoadUnitScale / 2));
    const double next = model_.factor(state_, mine, kLoadUnitScale, ws_);
    EXPECT_GT(next, prev);
    prev = next;
  }
  // Releasing a neighbour deflates monotonically too.
  state_.release(10);
  EXPECT_LT(model_.factor(state_, mine, kLoadUnitScale, ws_), prev);
}

TEST_F(DegradationModelTest, FactorClampedAtMaxRatio) {
  const DegradationModel steep(
      tree_, DegradationOptions{.enabled = true, .alpha = 1e6},
      RuntimeModelOptions{.max_ratio = 3.0});
  const std::vector<NodeId> mine{0, 1};
  state_.allocate(1, true, mine, false, kLoadUnitScale);
  state_.allocate(2, true, std::vector<NodeId>{2, 3}, false, kLoadUnitScale);
  EXPECT_EQ(steep.factor(state_, mine, kLoadUnitScale, ws_), 3.0);
}

TEST_F(DegradationModelTest, AlphaZeroIsModelNeutral) {
  const DegradationModel off(
      tree_, DegradationOptions{.enabled = true, .alpha = 0.0},
      RuntimeModelOptions{});
  const std::vector<NodeId> mine{0, 1};
  state_.allocate(1, true, mine, false, kLoadUnitScale);
  state_.allocate(2, true, std::vector<NodeId>{2, 3}, false, kLoadUnitScale);
  EXPECT_EQ(off.factor(state_, mine, kLoadUnitScale, ws_), 1.0);
}

TEST_F(DegradationModelTest, RepeatedEvaluationIsBitReproducible) {
  // The workspace's epoch-stamped arrays must not leak state between
  // evaluations: the same query twice returns the same bits.
  state_.allocate(1, true, std::vector<NodeId>{0, 1, 4}, false, 700);
  state_.allocate(2, true, std::vector<NodeId>{2, 5}, false, 300);
  const std::vector<NodeId> mine{0, 1, 4};
  const double first = model_.factor(state_, mine, 700, ws_);
  for (int i = 0; i < 10; ++i) {
    // Interleave queries over a different allocation to churn the stamps.
    (void)model_.external_load(state_, std::vector<NodeId>{2, 5}, 300, ws_);
    EXPECT_EQ(model_.factor(state_, mine, 700, ws_), first);
  }
}

}  // namespace
}  // namespace commsched
