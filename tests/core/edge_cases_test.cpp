// Boundary behaviours that the scenario and property suites do not pin
// explicitly: saturated leaves in Eq. 1, single-node jobs, full-machine
// jobs, and the §3.1 lowest-level-switch walk on deeper trees.
#include <gtest/gtest.h>

#include <vector>

#include "core/allocator_common.hpp"
#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

TEST(CommunicationRatioEdgeTest, FullySaturatedCommLeaf) {
  // All 4 nodes busy with comm jobs: ratio = 4/4 + 4/4 = 2 (the maximum).
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(communication_ratio(state, tree.leaf_of(0)), 2.0);
}

TEST(CommunicationRatioEdgeTest, FullComputeLeafStillRanksAboveIdle) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3});
  // 0/4 + 4/4 = 1: busier than idle (0), quieter than comm-saturated (2).
  EXPECT_DOUBLE_EQ(communication_ratio(state, tree.leaf_of(0)), 1.0);
  EXPECT_DOUBLE_EQ(communication_ratio(state, tree.leaf_of(4)), 0.0);
}

TEST(AllocatorEdgeTest, SingleNodeJobsAlwaysPlaceable) {
  const Tree tree = make_two_level_tree(3, 4);
  ClusterState state(tree);
  // Leave exactly one node free.
  std::vector<NodeId> busy;
  for (NodeId n = 0; n < 11; ++n) busy.push_back(n);
  state.allocate(1, true, busy);
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    AllocationRequest req;
    req.job = 2;
    req.num_nodes = 1;
    req.comm_intensive = true;
    const auto nodes = make_allocator(kind)->select(state, req);
    ASSERT_TRUE(nodes.has_value()) << allocator_kind_name(kind);
    EXPECT_EQ((*nodes)[0], NodeId{11});
  }
}

TEST(AllocatorEdgeTest, FullMachineJobTakesEverything) {
  const Tree tree = make_two_level_tree(3, 4);
  const ClusterState state(tree);
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    AllocationRequest req;
    req.job = 1;
    req.num_nodes = 12;
    req.comm_intensive = true;
    req.pattern = Pattern::kRecursiveHalvingVD;
    const auto nodes = make_allocator(kind)->select(state, req);
    ASSERT_TRUE(nodes.has_value()) << allocator_kind_name(kind);
    EXPECT_EQ(nodes->size(), 12u);
  }
}

TEST(LowestLevelSwitchEdgeTest, ThreeLevelWalk) {
  // 2 groups x 2 leaves x 4 nodes. With one group half-busy, a 6-node job
  // fits a level-2 group; a 13-node job needs the root.
  const Tree tree = make_three_level_tree(2, 2, 4);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3});
  const SwitchId found6 = find_lowest_level_switch(state, 6);
  EXPECT_EQ(tree.level(found6), 2);
  // Best fit: the half-busy group (4 free) cannot host 6; the idle group
  // (8 free) can.
  EXPECT_EQ(state.free_under(found6), 8);
  const SwitchId found13 = find_lowest_level_switch(state, 13);
  EXPECT_EQ(found13, kInvalidSwitch);  // only 12 free in total
  state.release(1);
  EXPECT_EQ(find_lowest_level_switch(state, 13), tree.root());
}

TEST(CostModelEdgeTest, SingleRankScheduleCostsNothing) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const std::vector<NodeId> one{3};
  for (const Pattern p :
       {Pattern::kRecursiveDoubling, Pattern::kRing, Pattern::kBinomial})
    EXPECT_DOUBLE_EQ(
        model.candidate_cost(state, one, true, make_schedule(p, 1, 1.0)),
        0.0);
}

TEST(CostModelEdgeTest, EmptyScheduleCostsNothing) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const std::vector<NodeId> nodes{0, 1};
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, nodes, true, CommSchedule{}),
                   0.0);
}

}  // namespace
}  // namespace commsched
