#include "core/exclusive_allocator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/allocator_factory.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

AllocationRequest request_of(int nodes, bool comm = true) {
  AllocationRequest r;
  r.job = 321;
  r.num_nodes = nodes;
  r.comm_intensive = comm;
  return r;
}

TEST(ExclusiveAllocatorTest, SmallJobGetsBestFittingIdleLeaf) {
  // Leaves of 16 nodes; one leaf partially busy. A 4-node job must land on
  // an entirely idle leaf, not the one with traffic.
  const Tree tree = make_two_level_tree(3, 16);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1});
  const ExclusiveAllocator alloc;
  const auto nodes = alloc.select(state, request_of(4));
  ASSERT_TRUE(nodes.has_value());
  const SwitchId leaf = tree.leaf_of((*nodes)[0]);
  EXPECT_EQ(state.leaf_busy(leaf), 0);
  for (const NodeId n : *nodes) EXPECT_EQ(tree.leaf_of(n), leaf);
}

TEST(ExclusiveAllocatorTest, RefusesWhenOnlySharedLeavesHaveRoom) {
  // Both leaves have free nodes, but both already host a job -> exclusive
  // refuses even though the count test passes.
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0});
  state.allocate(2, true, std::vector<NodeId>{8});
  EXPECT_EQ(state.total_free(), 14);
  const ExclusiveAllocator alloc;
  EXPECT_FALSE(alloc.select(state, request_of(4)).has_value());
}

TEST(ExclusiveAllocatorTest, LargeJobSpansOnlyIdleLeaves) {
  const Tree tree = make_two_level_tree(4, 8);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0});  // leaf 0 is tainted
  const ExclusiveAllocator alloc;
  const auto nodes = alloc.select(state, request_of(20));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(nodes->size(), 20u);
  std::set<SwitchId> used;
  for (const NodeId n : *nodes) {
    used.insert(tree.leaf_of(n));
    EXPECT_NE(tree.leaf_of(n), tree.leaf_of(0));
  }
  EXPECT_EQ(used.size(), 3u);  // 8 + 8 + 4 from the three idle leaves
}

TEST(ExclusiveAllocatorTest, IgnoresJobType) {
  const Tree tree = make_two_level_tree(2, 8);
  const ClusterState state(tree);
  const ExclusiveAllocator alloc;
  EXPECT_EQ(*alloc.select(state, request_of(4, true)),
            *alloc.select(state, request_of(4, false)));
}

TEST(ExclusiveAllocatorTest, EmptyMachineAcceptsFullMachineJob) {
  const Tree tree = make_two_level_tree(2, 8);
  const ClusterState state(tree);
  const ExclusiveAllocator alloc;
  const auto nodes = alloc.select(state, request_of(16));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(nodes->size(), 16u);
}

TEST(ExclusiveAllocatorTest, FactoryIntegration) {
  const auto alloc = make_allocator(AllocatorKind::kExclusive);
  EXPECT_STREQ(alloc->name(), "exclusive");
  EXPECT_EQ(allocator_kind_from_string("exclusive"),
            AllocatorKind::kExclusive);
  // Deliberately NOT part of the paper's policy set.
  for (const AllocatorKind kind : kAllAllocatorKinds)
    EXPECT_NE(kind, AllocatorKind::kExclusive);
}

TEST(ExclusiveAllocatorTest, SelectionDoesNotMutateState) {
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  const ExclusiveAllocator alloc;
  (void)alloc.select(state, request_of(4));
  EXPECT_EQ(state.total_free(), 16);
  state.validate();
}

}  // namespace
}  // namespace commsched
