#include "core/io_aware_allocator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/adaptive_allocator.hpp"
#include "core/allocator_factory.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

AllocationRequest io_request(int nodes, double io_fraction,
                             double comm_fraction = 0.0) {
  AllocationRequest r;
  r.job = 777;
  r.num_nodes = nodes;
  r.comm_intensive = comm_fraction > 0.0;
  r.io_intensive = io_fraction > 0.0;
  r.comm_fraction = comm_fraction;
  r.io_fraction = io_fraction;
  r.pattern = Pattern::kRecursiveHalvingVD;
  return r;
}

std::map<SwitchId, int> per_leaf(const Tree& tree,
                                 const std::vector<NodeId>& nodes) {
  std::map<SwitchId, int> counts;
  for (const NodeId n : nodes) ++counts[tree.leaf_of(n)];
  return counts;
}

TEST(SpreadCandidateTest, EvenBlocksAcrossLeaves) {
  const Tree tree = make_two_level_tree(4, 8);
  const ClusterState state(tree);
  const auto nodes = IoAwareAllocator::spread_candidate(state, 8);
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [leaf, count] : counts) EXPECT_EQ(count, 2);
  // Blocks are contiguous in rank space: ranks 0-1 share a leaf, etc.
  for (int r = 0; r < 8; r += 2)
    EXPECT_EQ(tree.leaf_of((*nodes)[static_cast<std::size_t>(r)]),
              tree.leaf_of((*nodes)[static_cast<std::size_t>(r + 1)]));
}

TEST(SpreadCandidateTest, CapacityDeficitWrapsToOtherLeaves) {
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6});
  // leaf0: 1 free, leaf1: 8 free; request 6 -> 1 + 5 regardless of shares.
  const auto nodes = IoAwareAllocator::spread_candidate(state, 6);
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  EXPECT_EQ(counts.at(tree.leaf_of(7)), 1);
  EXPECT_EQ(counts.at(tree.leaf_of(8)), 5);
}

TEST(SpreadCandidateTest, AvoidsIoLoadedLeaves) {
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2}, /*io=*/true);
  const auto nodes = IoAwareAllocator::spread_candidate(state, 4);
  ASSERT_TRUE(nodes.has_value());
  // Leaf 1 (no I/O) is preferred in the round-robin ordering: it gets the
  // first pick of every round and ends with at least half the nodes.
  const auto counts = per_leaf(tree, *nodes);
  const SwitchId leaf1 = tree.leaf_of(8);
  EXPECT_GE(counts.at(leaf1), 2);
}

TEST(SpreadCandidateTest, NulloptWhenShortOnNodes) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3, 4, 5});
  EXPECT_FALSE(IoAwareAllocator::spread_candidate(state, 3).has_value());
  EXPECT_TRUE(IoAwareAllocator::spread_candidate(state, 2).has_value());
}

TEST(IoAwareAllocatorTest, PureIoJobGetsSpread) {
  const Tree tree = make_two_level_tree(4, 8);
  const ClusterState state(tree);
  const IoAwareAllocator alloc;
  const auto nodes = alloc.select(state, io_request(8, /*io=*/0.8));
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, *IoAwareAllocator::spread_candidate(state, 8));
}

TEST(IoAwareAllocatorTest, PureCommJobMatchesAdaptiveChoiceCost) {
  const Tree tree = make_two_level_tree(4, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1, 2, 3});
  const IoAwareAllocator io_alloc;
  const AdaptiveAllocator adaptive;
  AllocationRequest req = io_request(8, /*io=*/0.0, /*comm=*/0.8);
  const auto a = io_alloc.select(state, req);
  const auto b = adaptive.select(state, req);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Same candidate pool minus the spread (which a comm job won't prefer):
  // both must land on a placement with the same comm cost.
  const CostModel model(tree, CostOptions{.hop_bytes = true});
  const auto sched = make_schedule(req.pattern, req.num_nodes, req.msize);
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, *a, true, sched),
                   model.candidate_cost(state, *b, true, sched));
}

TEST(IoAwareAllocatorTest, MixedJobTradesOffBothTerms) {
  // Cluster with one I/O-loaded leaf. A mixed comm+I/O job must avoid
  // stacking on that leaf even though it is otherwise attractive.
  const Tree tree = make_two_level_tree(2, 16);
  ClusterState state(tree);
  state.allocate(1, false, std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7},
                 /*io=*/true);
  const IoAwareAllocator alloc;
  const auto nodes = alloc.select(state, io_request(8, 0.5, 0.4));
  ASSERT_TRUE(nodes.has_value());
  const auto counts = per_leaf(tree, *nodes);
  const SwitchId io_leaf = tree.leaf_of(0);
  const int on_io_leaf = counts.contains(io_leaf) ? counts.at(io_leaf) : 0;
  EXPECT_LE(on_io_leaf, 4);  // at most half lands behind the loaded uplink
}

TEST(IoAwareAllocatorTest, SelectionInvariants) {
  const Tree tree = make_two_level_tree(3, 8);
  ClusterState state(tree);
  state.allocate(1, true, std::vector<NodeId>{0, 1, 8, 9}, true);
  const IoAwareAllocator alloc;
  for (const double io : {0.0, 0.3, 0.9}) {
    const auto nodes = alloc.select(state, io_request(10, io, 0.5 * (1 - io)));
    ASSERT_TRUE(nodes.has_value());
    EXPECT_EQ(nodes->size(), 10u);
    std::set<NodeId> unique(nodes->begin(), nodes->end());
    EXPECT_EQ(unique.size(), 10u);
    for (const NodeId n : *nodes) EXPECT_TRUE(state.is_free(n));
  }
  EXPECT_EQ(state.total_free(), 20);
  state.validate();
}

TEST(IoAwareAllocatorTest, FactoryIntegration) {
  const auto alloc = make_allocator(AllocatorKind::kIoAware);
  EXPECT_STREQ(alloc->name(), "io_aware");
  EXPECT_EQ(allocator_kind_from_string("io_aware"), AllocatorKind::kIoAware);
  for (const AllocatorKind kind : kAllAllocatorKinds)
    EXPECT_NE(kind, AllocatorKind::kIoAware);
}

}  // namespace
}  // namespace commsched
