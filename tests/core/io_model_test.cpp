#include "core/io_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(IoModelTest, ContentionIsLeafIoFraction) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  const IoModel model(tree);
  EXPECT_DOUBLE_EQ(model.contention(state, 0), 0.0);
  state.allocate(1, /*comm=*/false, std::vector<NodeId>{0, 1},
                 /*io=*/true);
  EXPECT_DOUBLE_EQ(model.contention(state, 2), 0.5);  // 2 of 4 on the leaf
  EXPECT_DOUBLE_EQ(model.contention(state, 4), 0.0);  // other leaf untouched
}

TEST(IoModelTest, NonIoJobsAddNoIoContention) {
  const Tree tree = make_figure2_tree();
  ClusterState state(tree);
  const IoModel model(tree);
  state.allocate(1, /*comm=*/true, std::vector<NodeId>{0, 1});
  EXPECT_DOUBLE_EQ(model.contention(state, 2), 0.0);
}

TEST(IoModelTest, AllocationCostSumsPerNode) {
  // Two-level tree: d_io = 4. Empty machine: cost = 4 * nodes.
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const IoModel model(tree);
  const std::vector<NodeId> nodes{0, 1, 4};
  EXPECT_DOUBLE_EQ(model.allocation_cost(state, nodes), 12.0);
}

TEST(IoModelTest, CandidateSelfInclusionRaisesCost) {
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const IoModel model(tree);
  const std::vector<NodeId> packed{0, 1, 2, 3};   // all on one 4-node leaf
  const std::vector<NodeId> spread{0, 1, 4, 5};   // two per leaf
  // Packed: each node sees C_io = 4/4 = 1 -> 4 * 4*(1+1) = 32.
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, packed, true), 32.0);
  // Spread: each node sees C_io = 2/4 -> 4 * 4*1.5 = 24.
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, spread, true), 24.0);
  // A non-I/O candidate adds nothing on an empty machine.
  EXPECT_DOUBLE_EQ(model.candidate_cost(state, packed, false), 16.0);
}

TEST(IoModelTest, DeeperTreesPayLongerIoPaths) {
  const Tree deep = make_three_level_tree(2, 2, 4);
  const ClusterState state(deep);
  const IoModel model(deep);
  const std::vector<NodeId> one{0};
  EXPECT_DOUBLE_EQ(model.allocation_cost(state, one), 6.0);  // 2 * depth 3
}

TEST(ModifiedRuntimeWithIoTest, ReducesToEq7WithoutIo) {
  EXPECT_DOUBLE_EQ(
      modified_runtime_with_io(100.0, 0.4, 50.0, 100.0, 0.0, 0.0, 0.0),
      modified_runtime(100.0, 0.4, 50.0, 100.0));
}

TEST(ModifiedRuntimeWithIoTest, CombinesBothTerms) {
  // T=100: 30% compute, 40% comm at ratio 0.5, 30% I/O at ratio 2.
  EXPECT_DOUBLE_EQ(modified_runtime_with_io(100.0, 0.4, 1.0, 2.0,
                                            0.3, 2.0, 1.0),
                   30.0 + 40.0 * 0.5 + 30.0 * 2.0);
}

TEST(ModifiedRuntimeWithIoTest, RejectsOverfullFractions) {
  EXPECT_THROW(
      modified_runtime_with_io(100.0, 0.7, 1.0, 1.0, 0.4, 1.0, 1.0),
      InvariantError);
}

}  // namespace
}  // namespace commsched
