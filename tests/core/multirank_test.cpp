#include <gtest/gtest.h>

#include <vector>

#include "cluster/state.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(ExpandRanksPerNodeTest, BlockDistribution) {
  const std::vector<NodeId> nodes{5, 9};
  EXPECT_EQ(expand_ranks_per_node(nodes, 3),
            (std::vector<NodeId>{5, 5, 5, 9, 9, 9}));
  EXPECT_EQ(expand_ranks_per_node(nodes, 1), nodes);
  EXPECT_THROW(expand_ranks_per_node(nodes, 0), InvariantError);
}

TEST(ExpandRanksPerNodeTest, IntraNodePairsAreFree) {
  // 4 ranks on 2 nodes: RD step 0 pairs (0,1) and (2,3) stay on-node ->
  // hops 0; step 1 pairs (0,2),(1,3) cross nodes.
  const Tree tree = make_figure2_tree();
  const ClusterState state(tree);
  const CostModel model(tree);
  const std::vector<NodeId> nodes{0, 4};  // different leaves
  const auto ranks = expand_ranks_per_node(nodes, 2);
  const auto sched = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  // Step 0 max hops = 0 (same node); step 1 max = cross-leaf distance 4.
  EXPECT_DOUBLE_EQ(model.allocation_cost(state, ranks, sched), 4.0);
}

TEST(ExpandRanksPerNodeTest, MultiRankLowersPerRankCost) {
  // The same 8-rank job on 8 spread nodes vs 2 ranks/node on 4 nodes:
  // on-node pairs make the dense variant strictly cheaper.
  const Tree tree = make_two_level_tree(2, 8);
  const ClusterState state(tree);
  const CostModel model(tree);
  const auto sched = make_schedule(Pattern::kRecursiveHalvingVD, 8, 1.0);
  const std::vector<NodeId> eight{0, 1, 2, 3, 8, 9, 10, 11};
  const std::vector<NodeId> four{0, 1, 8, 9};
  EXPECT_LT(model.allocation_cost(state, expand_ranks_per_node(four, 2), sched),
            model.allocation_cost(state, eight, sched));
}

}  // namespace
}  // namespace commsched
