// Cross-checks the greedy and balanced allocators against independent
// reimplementations of the paper's Algorithm 1/2 *arithmetic* (how many
// nodes land on which leaf, given the sorted leaf order). The production
// code walks node lists and cluster state; the reference model here works
// purely on (free-count, ratio) tuples — if both agree across randomized
// states, the production bookkeeping is faithful to the pseudocode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/allocator_common.hpp"
#include "core/balanced_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

struct LeafInfo {
  SwitchId leaf;
  int free;
  double ratio;
};

// Algorithm 1 lines 7-18, over abstract leaf tuples.
std::map<SwitchId, int> reference_greedy(std::vector<LeafInfo> leaves, int n,
                                         bool comm) {
  std::stable_sort(leaves.begin(), leaves.end(),
                   [&](const LeafInfo& a, const LeafInfo& b) {
                     if (a.ratio != b.ratio)
                       return comm ? a.ratio < b.ratio : a.ratio > b.ratio;
                     return a.leaf < b.leaf;
                   });
  std::map<SwitchId, int> out;
  int remaining = n;
  for (const LeafInfo& leaf : leaves) {
    const int take = std::min(leaf.free, remaining);
    if (take > 0) out[leaf.leaf] = take;
    remaining -= take;
    if (remaining == 0) break;
  }
  return out;
}

// Algorithm 2 lines 7-27 (comm branch), over abstract leaf tuples.
std::map<SwitchId, int> reference_balanced_comm(std::vector<LeafInfo> leaves,
                                                int n) {
  std::stable_sort(leaves.begin(), leaves.end(),
                   [](const LeafInfo& a, const LeafInfo& b) {
                     if (a.free != b.free) return a.free > b.free;
                     return a.leaf < b.leaf;
                   });
  std::map<SwitchId, int> out;
  int remaining = n;
  int chunk = n;
  std::vector<int> used(leaves.size(), 0);
  for (std::size_t i = 0; i < leaves.size() && remaining > 0; ++i) {
    while (chunk > leaves[i].free) chunk /= 2;
    if (chunk == 0) break;
    const int take = std::min(chunk, remaining);
    used[i] = take;
    remaining -= take;
  }
  if (remaining > 0) {
    for (std::size_t i = leaves.size(); i-- > 0 && remaining > 0;) {
      const int extra = std::min(leaves[i].free - used[i], remaining);
      used[i] += extra;
      remaining -= extra;
    }
  }
  for (std::size_t i = 0; i < leaves.size(); ++i)
    if (used[i] > 0) out[leaves[i].leaf] = used[i];
  return out;
}

struct RandomState {
  Tree tree;
  ClusterState state;
  explicit RandomState(std::uint64_t seed)
      : tree(make_two_level_tree(6, 16)), state(tree) {
    Rng rng(seed);
    JobId job = 1;
    for (const SwitchId leaf : tree.leaves()) {
      std::vector<NodeId> busy;
      for (const NodeId n : tree.nodes_of_leaf(leaf))
        if (rng.bernoulli(rng.uniform_real(0.0, 0.8))) busy.push_back(n);
      if (!busy.empty()) state.allocate(job++, rng.bernoulli(0.5), busy);
    }
  }

  std::vector<LeafInfo> leaf_infos() const {
    std::vector<LeafInfo> infos;
    for (const SwitchId leaf : tree.leaves())
      if (state.leaf_free(leaf) > 0)
        infos.push_back({leaf, state.leaf_free(leaf),
                         communication_ratio(state, leaf)});
    return infos;
  }
};

std::map<SwitchId, int> per_leaf(const Tree& tree,
                                 const std::vector<NodeId>& nodes) {
  std::map<SwitchId, int> counts;
  for (const NodeId n : nodes) ++counts[tree.leaf_of(n)];
  return counts;
}

class ReferenceModelSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, bool>> {};

TEST_P(ReferenceModelSweep, GreedyMatchesAlgorithm1Arithmetic) {
  const auto [seed, request, comm] = GetParam();
  const RandomState rs(seed);
  if (rs.state.total_free() < request) return;
  // The reference model covers the multi-leaf path; when a single leaf can
  // host the request the production code legitimately short-circuits
  // (Algorithm 1 lines 3-5).
  const SwitchId top = find_lowest_level_switch(rs.state, request);
  if (rs.tree.is_leaf(top)) return;

  AllocationRequest req;
  req.job = 99;
  req.num_nodes = request;
  req.comm_intensive = comm;
  const GreedyAllocator alloc;
  const auto nodes = alloc.select(rs.state, req);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(per_leaf(rs.tree, *nodes),
            reference_greedy(rs.leaf_infos(), request, comm));
}

TEST_P(ReferenceModelSweep, BalancedMatchesAlgorithm2Arithmetic) {
  const auto [seed, request, comm] = GetParam();
  if (!comm) return;  // the compute branch is plain min-free fill
  const RandomState rs(seed);
  if (rs.state.total_free() < request) return;
  const SwitchId top = find_lowest_level_switch(rs.state, request);
  if (rs.tree.is_leaf(top)) return;

  AllocationRequest req;
  req.job = 99;
  req.num_nodes = request;
  req.comm_intensive = true;
  const BalancedAllocator alloc;
  const auto nodes = alloc.select(rs.state, req);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(per_leaf(rs.tree, *nodes),
            reference_balanced_comm(rs.leaf_infos(), request));
}

std::vector<std::tuple<std::uint64_t, int, bool>> sweep_cases() {
  std::vector<std::tuple<std::uint64_t, int, bool>> cases;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u})
    for (const int request : {8, 16, 17, 24, 32, 48, 64})
      for (const bool comm : {true, false})
        cases.emplace_back(seed, request, comm);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomStates, ReferenceModelSweep,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace commsched
