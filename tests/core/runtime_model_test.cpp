#include "core/runtime_model.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(CostRatioTest, PlainRatio) {
  EXPECT_DOUBLE_EQ(cost_ratio(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(cost_ratio(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(cost_ratio(150.0, 100.0), 1.5);
}

TEST(CostRatioTest, ZeroDefaultCostIsNeutral) {
  EXPECT_DOUBLE_EQ(cost_ratio(10.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cost_ratio(0.0, 0.0), 1.0);
}

TEST(CostRatioTest, ClampsToConfiguredBounds) {
  const RuntimeModelOptions opts{.min_ratio = 0.5, .max_ratio = 2.0};
  EXPECT_DOUBLE_EQ(cost_ratio(1.0, 100.0, opts), 0.5);
  EXPECT_DOUBLE_EQ(cost_ratio(1000.0, 1.0, opts), 2.0);
  EXPECT_DOUBLE_EQ(cost_ratio(1.5, 1.0, opts), 1.5);
}

TEST(CostRatioTest, RejectsNegativeCosts) {
  EXPECT_THROW(cost_ratio(-1.0, 1.0), InvariantError);
  EXPECT_THROW(cost_ratio(1.0, -1.0), InvariantError);
}

TEST(ModifiedRuntimeTest, PaperEquation7) {
  // T = 100 s, 40% communication; job-aware cost half of default
  // -> T' = 60 + 40 * 0.5 = 80.
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.4, 50.0, 100.0), 80.0);
}

TEST(ModifiedRuntimeTest, WorseAllocationSlowsTheJob) {
  // T' = 60 + 40 * (200/100) = 140.
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.4, 200.0, 100.0), 140.0);
}

TEST(ModifiedRuntimeTest, ZeroCommFractionIsUnchanged) {
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.0, 1.0, 100.0), 100.0);
}

TEST(ModifiedRuntimeTest, FullCommFractionScalesEverything) {
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 1.0, 25.0, 100.0), 25.0);
}

TEST(ModifiedRuntimeTest, EqualCostsLeaveRuntimeUnchanged) {
  EXPECT_DOUBLE_EQ(modified_runtime(1234.5, 0.7, 42.0, 42.0), 1234.5);
}

TEST(ModifiedRuntimeTest, RuntimeStaysPositive) {
  const double t = modified_runtime(100.0, 1.0, 0.0001, 1000.0);
  EXPECT_GT(t, 0.0);  // min_ratio clamp guarantees this
}

TEST(ModifiedRuntimeTest, RejectsInvalidInput) {
  EXPECT_THROW(modified_runtime(-1.0, 0.5, 1.0, 1.0), InvariantError);
  EXPECT_THROW(modified_runtime(1.0, -0.1, 1.0, 1.0), InvariantError);
  EXPECT_THROW(modified_runtime(1.0, 1.1, 1.0, 1.0), InvariantError);
}

}  // namespace
}  // namespace commsched
