#include "core/runtime_model.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {
namespace {

TEST(CostRatioTest, PlainRatio) {
  EXPECT_DOUBLE_EQ(cost_ratio(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(cost_ratio(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(cost_ratio(150.0, 100.0), 1.5);
}

TEST(CostRatioTest, ZeroDefaultCostIsNeutral) {
  EXPECT_DOUBLE_EQ(cost_ratio(10.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cost_ratio(0.0, 0.0), 1.0);
}

TEST(CostRatioTest, ClampsToConfiguredBounds) {
  const RuntimeModelOptions opts{.min_ratio = 0.5, .max_ratio = 2.0};
  EXPECT_DOUBLE_EQ(cost_ratio(1.0, 100.0, opts), 0.5);
  EXPECT_DOUBLE_EQ(cost_ratio(1000.0, 1.0, opts), 2.0);
  EXPECT_DOUBLE_EQ(cost_ratio(1.5, 1.0, opts), 1.5);
}

TEST(CostRatioTest, RejectsNegativeCosts) {
  EXPECT_THROW(cost_ratio(-1.0, 1.0), InvariantError);
  EXPECT_THROW(cost_ratio(1.0, -1.0), InvariantError);
}

TEST(ModifiedRuntimeTest, PaperEquation7) {
  // T = 100 s, 40% communication; job-aware cost half of default
  // -> T' = 60 + 40 * 0.5 = 80.
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.4, 50.0, 100.0), 80.0);
}

TEST(ModifiedRuntimeTest, WorseAllocationSlowsTheJob) {
  // T' = 60 + 40 * (200/100) = 140.
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.4, 200.0, 100.0), 140.0);
}

TEST(ModifiedRuntimeTest, ZeroCommFractionIsUnchanged) {
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 0.0, 1.0, 100.0), 100.0);
}

TEST(ModifiedRuntimeTest, FullCommFractionScalesEverything) {
  EXPECT_DOUBLE_EQ(modified_runtime(100.0, 1.0, 25.0, 100.0), 25.0);
}

TEST(ModifiedRuntimeTest, EqualCostsLeaveRuntimeUnchanged) {
  EXPECT_DOUBLE_EQ(modified_runtime(1234.5, 0.7, 42.0, 42.0), 1234.5);
}

TEST(ModifiedRuntimeTest, RuntimeStaysPositive) {
  const double t = modified_runtime(100.0, 1.0, 0.0001, 1000.0);
  EXPECT_GT(t, 0.0);  // min_ratio clamp guarantees this
}

TEST(ModifiedRuntimeTest, RejectsInvalidInput) {
  EXPECT_THROW(modified_runtime(-1.0, 0.5, 1.0, 1.0), InvariantError);
  EXPECT_THROW(modified_runtime(1.0, -0.1, 1.0, 1.0), InvariantError);
  EXPECT_THROW(modified_runtime(1.0, 1.1, 1.0, 1.0), InvariantError);
}

// RAII guard so a throwing assertion cannot leak the variable into later
// tests (mirrors AuditLevelTest.EnvSelectsLevel in auditor_test.cpp).
class RuntimeClampEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("COMMSCHED_RUNTIME_CLAMP"); }
};

TEST_F(RuntimeClampEnvTest, UnsetOrEmptyReturnsBase) {
  const RuntimeModelOptions base{.min_ratio = 0.25, .max_ratio = 4.0};
  unsetenv("COMMSCHED_RUNTIME_CLAMP");
  RuntimeModelOptions got = runtime_options_from_env(base);
  EXPECT_DOUBLE_EQ(got.min_ratio, 0.25);
  EXPECT_DOUBLE_EQ(got.max_ratio, 4.0);
  setenv("COMMSCHED_RUNTIME_CLAMP", "", 1);
  got = runtime_options_from_env(base);
  EXPECT_DOUBLE_EQ(got.min_ratio, 0.25);
  EXPECT_DOUBLE_EQ(got.max_ratio, 4.0);
}

TEST_F(RuntimeClampEnvTest, MinColonMaxReplacesBothClamps) {
  setenv("COMMSCHED_RUNTIME_CLAMP", "0.1:5", 1);
  const RuntimeModelOptions got = runtime_options_from_env();
  EXPECT_DOUBLE_EQ(got.min_ratio, 0.1);
  EXPECT_DOUBLE_EQ(got.max_ratio, 5.0);
}

TEST_F(RuntimeClampEnvTest, SingleValueReplacesOnlyUpperClamp) {
  setenv("COMMSCHED_RUNTIME_CLAMP", "3", 1);
  const RuntimeModelOptions got =
      runtime_options_from_env({.min_ratio = 0.5, .max_ratio = 20.0});
  EXPECT_DOUBLE_EQ(got.min_ratio, 0.5);
  EXPECT_DOUBLE_EQ(got.max_ratio, 3.0);
}

TEST_F(RuntimeClampEnvTest, MalformedOrInvertedRangeThrows) {
  for (const char* bad : {"abc", "1:zz", ":", "5:1", "0:2", "-1:2", "0"}) {
    setenv("COMMSCHED_RUNTIME_CLAMP", bad, 1);
    EXPECT_THROW(runtime_options_from_env(), ParseError) << bad;
  }
}

}  // namespace
}  // namespace commsched
