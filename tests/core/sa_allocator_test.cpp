// Simulated-annealing allocator (DESIGN.md "Delta-cost evaluation & search
// allocators"): determinism under a fixed seed, validity of the returned
// node set, the never-worse-than-its-seeds guarantee, the budget=0
// degenerate case, pluggable proposal policies, the in-anneal delta-vs-full
// verification, and factory registration (name list kept in sync).
#include "core/sa_allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/adaptive_allocator.hpp"
#include "core/allocator_common.hpp"
#include "core/allocator_factory.hpp"
#include "core/balanced_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

AllocationRequest comm_request(int nodes,
                               Pattern pattern = Pattern::kPairwiseAlltoall) {
  AllocationRequest r;
  r.job = 424242;
  r.num_nodes = nodes;
  r.comm_intensive = true;
  r.pattern = pattern;
  return r;
}

// A fragmented 8x4 machine: background jobs pepper the leaves so the greedy
// seed lands scattered and the anneal has room to improve.
class SaAllocatorFixture : public ::testing::Test {
 protected:
  SaAllocatorFixture() : tree_(make_two_level_tree(8, 4)), state_(tree_) {
    state_.allocate(1, /*comm=*/true, std::vector<NodeId>{0, 1, 2});
    state_.allocate(2, /*comm=*/false, std::vector<NodeId>{4, 5, 6});
    state_.allocate(3, /*comm=*/true, std::vector<NodeId>{8, 9});
    state_.allocate(4, /*comm=*/true, std::vector<NodeId>{13, 14});
    state_.allocate(5, /*comm=*/false, std::vector<NodeId>{17, 18});
    state_.allocate(6, /*comm=*/true, std::vector<NodeId>{21, 22});
  }

  // Full Eq. 6 price of `nodes` through an independent cache/workspace.
  double price(std::span<const NodeId> nodes, const AllocationRequest& r) {
    const CostModel model(tree_, CostOptions{.hop_bytes = true});
    CommCache cache(double{1 << 20});
    CostWorkspace ws;
    return profiled_candidate_cost(model, cache, state_, nodes, true,
                                   r.pattern, ws);
  }

  Tree tree_;
  ClusterState state_;
};

TEST_F(SaAllocatorFixture, ReturnsValidFreeDistinctNodes) {
  const SaAllocator sa(CostOptions{.hop_bytes = true});
  std::vector<NodeId> nodes;
  ASSERT_TRUE(sa.select_into(state_, comm_request(8), nodes));
  ASSERT_EQ(nodes.size(), 8u);
  std::set<NodeId> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), 8u);
  for (const NodeId n : nodes) EXPECT_TRUE(state_.is_free(n)) << n;
}

TEST_F(SaAllocatorFixture, DeterministicAcrossCallsAndInstances) {
  const SaAllocator a(CostOptions{.hop_bytes = true});
  const SaAllocator b(CostOptions{.hop_bytes = true});
  std::vector<NodeId> first, again, other;
  ASSERT_TRUE(a.select_into(state_, comm_request(8), first));
  ASSERT_TRUE(a.select_into(state_, comm_request(8), again));
  ASSERT_TRUE(b.select_into(state_, comm_request(8), other));
  EXPECT_EQ(first, again) << "per-job stream must be stateless across calls";
  EXPECT_EQ(first, other) << "placement must depend only on (options, state, "
                             "request)";

  // A different base seed gives a different stream (and usually placement);
  // determinism must hold per seed either way.
  SaOptions reseeded;
  reseeded.seed = 1;
  const SaAllocator c(CostOptions{.hop_bytes = true}, reseeded);
  std::vector<NodeId> c1, c2;
  ASSERT_TRUE(c.select_into(state_, comm_request(8), c1));
  ASSERT_TRUE(c.select_into(state_, comm_request(8), c2));
  EXPECT_EQ(c1, c2);
}

TEST_F(SaAllocatorFixture, NeverWorseThanEitherSeedPolicy) {
  const GreedyAllocator greedy;
  const BalancedAllocator balanced;
  const SaAllocator sa(CostOptions{.hop_bytes = true});
  for (const int n : {4, 6, 8, 12}) {
    for (const Pattern p :
         {Pattern::kPairwiseAlltoall, Pattern::kRecursiveDoubling,
          Pattern::kRing}) {
      const AllocationRequest r = comm_request(n, p);
      std::vector<NodeId> sa_pick, greedy_pick, balanced_pick;
      ASSERT_TRUE(sa.select_into(state_, r, sa_pick));
      ASSERT_TRUE(greedy.select_into(state_, r, greedy_pick));
      ASSERT_TRUE(balanced.select_into(state_, r, balanced_pick));
      const double sa_cost = price(sa_pick, r);
      EXPECT_LE(sa_cost, price(greedy_pick, r)) << "n=" << n;
      EXPECT_LE(sa_cost, price(balanced_pick, r)) << "n=" << n;
      // The claimed cost is the full Eq. 6 price of the returned placement.
      ASSERT_TRUE(sa.last_has_cost());
      EXPECT_EQ(sa_cost, sa.last_cost()) << "n=" << n;
    }
  }
}

TEST_F(SaAllocatorFixture, ZeroBudgetReturnsTheCheaperSeed) {
  SaOptions off;
  off.budget = 0;
  const SaAllocator sa(CostOptions{.hop_bytes = true}, off);
  const GreedyAllocator greedy;
  const BalancedAllocator balanced;
  const AllocationRequest r = comm_request(8);
  std::vector<NodeId> sa_pick, greedy_pick, balanced_pick;
  ASSERT_TRUE(sa.select_into(state_, r, sa_pick));
  ASSERT_TRUE(greedy.select_into(state_, r, greedy_pick));
  ASSERT_TRUE(balanced.select_into(state_, r, balanced_pick));
  const double gc = price(greedy_pick, r), bc = price(balanced_pick, r);
  // Ties go to balanced, mirroring the adaptive policy.
  EXPECT_EQ(sa_pick, bc <= gc ? balanced_pick : greedy_pick);
  EXPECT_EQ(sa.last_cost(), std::min(gc, bc));
  EXPECT_EQ(sa.last_proposals(), 0);
}

TEST_F(SaAllocatorFixture, ComputeJobsFollowTheAdaptiveRule) {
  // Placement-insensitive jobs take the *pricier* candidate, exactly like
  // the adaptive policy — the SA family changes nothing for them.
  const SaAllocator sa(CostOptions{.hop_bytes = true});
  const AdaptiveAllocator adaptive(CostOptions{.hop_bytes = true});
  AllocationRequest r = comm_request(8);
  r.comm_intensive = false;
  std::vector<NodeId> sa_pick, adaptive_pick;
  ASSERT_TRUE(sa.select_into(state_, r, sa_pick));
  ASSERT_TRUE(adaptive.select_into(state_, r, adaptive_pick));
  EXPECT_EQ(sa_pick, adaptive_pick);
  EXPECT_FALSE(sa.last_has_cost());
}

// A policy that proposes nothing: the anneal must end immediately and fall
// back to the cheaper seed.
class NullPolicy final : public ProposalPolicy {
 public:
  const char* name() const noexcept override { return "null"; }
  void begin(const SaMoveContext&) override {}
  bool propose(const SaMoveContext&, Rng&, MoveProposal&) override {
    return false;
  }
};

// A policy that cycles one slot through the candidate leaves in order —
// exercises the injection seam with fully scripted (rng-free) moves.
class ScriptedPolicy final : public ProposalPolicy {
 public:
  const char* name() const noexcept override { return "scripted"; }
  void begin(const SaMoveContext&) override { next_ = 0; }
  bool propose(const SaMoveContext& ctx, Rng&, MoveProposal& out) override {
    if (ctx.candidate_leaves.empty()) return false;
    out.moves[0] = {0, ctx.candidate_leaves[next_ %
                                            ctx.candidate_leaves.size()]};
    out.count = 1;
    ++next_;
    ++proposals;
    return true;
  }
  int proposals = 0;

 private:
  std::size_t next_ = 0;
};

TEST_F(SaAllocatorFixture, CustomPolicyInjection) {
  SaOptions opts;
  opts.budget = 32;
  SaAllocator sa(CostOptions{.hop_bytes = true}, opts);

  sa.set_proposal_policy(std::make_unique<NullPolicy>());
  EXPECT_STREQ(sa.proposal_policy().name(), "null");
  const AllocationRequest r = comm_request(8);
  std::vector<NodeId> with_null;
  ASSERT_TRUE(sa.select_into(state_, r, with_null));
  EXPECT_EQ(sa.last_proposals(), 0);

  auto scripted = std::make_unique<ScriptedPolicy>();
  ScriptedPolicy* raw = scripted.get();
  sa.set_proposal_policy(std::move(scripted));
  std::vector<NodeId> with_scripted;
  ASSERT_TRUE(sa.select_into(state_, r, with_scripted));
  EXPECT_EQ(raw->proposals, 32) << "every proposal consumes budget";
  EXPECT_EQ(sa.last_proposals(), 32);
  EXPECT_LE(price(with_scripted, r), price(with_null, r));
}

TEST_F(SaAllocatorFixture, InAnnealVerificationRunsClean) {
  // verify_stride=1: every accepted move re-derives the delta-maintained
  // total with a full recompute; any divergence throws InvariantError.
  SaOptions verified;
  verified.verify_stride = 1;
  const SaAllocator sa(CostOptions{.hop_bytes = true}, verified);
  std::vector<NodeId> nodes;
  for (const Pattern p :
       {Pattern::kPairwiseAlltoall, Pattern::kRecursiveHalvingVD,
        Pattern::kBinomial, Pattern::kRing}) {
    ASSERT_TRUE(sa.select_into(state_, comm_request(8, p), nodes));
    EXPECT_GT(sa.last_accepts(), 0) << pattern_name(p);
  }
}

TEST(SaProposalKindTest, NamesRoundTrip) {
  EXPECT_STREQ(sa_proposal_kind_name(SaProposalKind::kUniform), "uniform");
  EXPECT_STREQ(sa_proposal_kind_name(SaProposalKind::kLocality), "locality");
  EXPECT_EQ(sa_proposal_kind_from_string("uniform"),
            SaProposalKind::kUniform);
  EXPECT_EQ(sa_proposal_kind_from_string("locality"),
            SaProposalKind::kLocality);
  EXPECT_FALSE(sa_proposal_kind_from_string("anneal").has_value());
}

TEST(SaFactoryTest, RegisteredUnderItsName) {
  EXPECT_EQ(allocator_kind_from_string("sa"), AllocatorKind::kSa);
  const auto sa = make_allocator(AllocatorKind::kSa);
  EXPECT_STREQ(sa->name(), "sa");
  // Paper set untouched: kSa is an extension, not a Figure 6-9 policy.
  EXPECT_EQ(std::size(kAllAllocatorKinds), 4u);
  for (const AllocatorKind kind : kAllAllocatorKinds)
    EXPECT_NE(kind, AllocatorKind::kSa);
}

TEST(SaFactoryTest, NameListStaysInSyncWithRegistry) {
  // Every registered kind parses back to itself, names are unique, and the
  // error-listing helper mentions each one — the sync test for the factory
  // error message.
  std::set<std::string> seen;
  const std::string names = allocator_kind_names();
  for (const AllocatorKind kind : kAllRegisteredAllocatorKinds) {
    const std::string name = allocator_kind_name(kind);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(allocator_kind_from_string(name), kind);
    EXPECT_NE(names.find(name), std::string::npos)
        << "allocator_kind_names() must list " << name;
    // Round-trip through the factory: the instance reports the same name.
    EXPECT_EQ(make_allocator(kind)->name(), name);
  }
}

TEST(SaFactoryTest, UnknownEnvNameErrorListsEveryPolicy) {
  ::setenv("JOBAWARE", "simulated-annealing", 1);
  try {
    (void)allocator_kind_from_env();
    FAIL() << "unknown JOBAWARE value must throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    for (const AllocatorKind kind : kAllRegisteredAllocatorKinds)
      EXPECT_NE(what.find(allocator_kind_name(kind)), std::string::npos)
          << "error message must list " << allocator_kind_name(kind);
  }
  ::unsetenv("JOBAWARE");
}

}  // namespace
}  // namespace commsched
