// Subprocess body for the kill/resume integration test
// (campaign_resume_test.cpp). Runs a small fixed campaign streaming to
// argv[1]; when argv[3] is given, SIGKILLs itself — no destructors, no
// flushes — the moment that many cells have been streamed. On a completed
// (unsharded) run it merges its own stream and writes canonical JSONL and
// reduced CSV next to argv[2], exactly what the parent diffs byte for byte
// against an uninterrupted run.
//
// Usage: exp_campaign_crash_child <stream.jsonl> <out_prefix|-> [kill_after]
// Honors COMMSCHED_SHARD / COMMSCHED_THREADS like any campaign harness.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "exp/sink.hpp"
#include "topology/builders.hpp"
#include "util/file_io.hpp"
#include "workload/synthetic.hpp"

namespace commsched::exp {
namespace {

// Mirrors the tiny grid of campaign_test.cpp: 2 machines x 2 mixes x 3
// allocators = 12 cells, milliseconds each.
MachineCase tiny_machine(const std::string& name, std::uint64_t seed) {
  LogProfile profile;
  profile.name = name;
  profile.machine_nodes = 64;
  profile.min_exp = 1;
  profile.max_exp = 5;
  profile.pow2_fraction = 0.9;
  profile.runtime_log_median = 6.0;
  profile.runtime_sigma = 0.8;
  profile.target_load = 0.9;
  return MachineCase{name, make_two_level_tree(4, 16),
                     generate_log(profile, 60, seed)};
}

CampaignSpec crash_spec() {
  CampaignSpec spec;
  spec.name = "crashtest";
  spec.quiet = true;
  spec.machines.push_back(tiny_machine("M0", 11));
  spec.machines.push_back(tiny_machine("M1", 22));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveDoubling, 0.6, 0.5));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kBalanced,
                     AllocatorKind::kAdaptive};
  spec.base_seeds = {7};
  return spec;
}

int child_main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: exp_campaign_crash_child <stream.jsonl> "
                 "<out_prefix|-> [kill_after]\n";
    return 2;
  }
  CampaignSpec spec = crash_spec();
  spec.stream_path = argv[1];
  const std::string out_prefix = argv[2];
  if (argc > 3) {
    const std::size_t kill_after =
        static_cast<std::size_t>(std::stoul(argv[3]));
    spec.on_cell_streamed = [kill_after](std::size_t streamed) {
      // Called with the line already fsync'd: dying here loses nothing but
      // the cells still in flight (whose partial bytes resume truncates).
      if (streamed >= kill_after) std::raise(SIGKILL);
    };
  }

  const CampaignResult result = CampaignRunner(spec).run();

  if (out_prefix != "-" && resolve_shard(spec).count == 1) {
    const MergedCampaign merged = merge_streams({spec.stream_path});
    write_file_atomic(out_prefix + ".jsonl",
                      canonical_jsonl(merged.header, merged.result));
    write_file_atomic(out_prefix + ".csv",
                      campaign_table(merged.result).render_csv());
  }
  std::cout << result.cells.size() << " cells\n";
  return 0;
}

}  // namespace
}  // namespace commsched::exp

int main(int argc, char** argv) {
  try {
    return commsched::exp::child_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "exp_campaign_crash_child: " << e.what() << "\n";
    return 1;
  }
}
