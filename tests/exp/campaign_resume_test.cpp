// Kill/resume integration test (DESIGN.md "Campaign persistence, sharding &
// resume"): a campaign process SIGKILL'd mid-grid — repeatedly, at the worst
// possible moment (mid-append, other workers in flight) — resumes from its
// stream and finishes with byte-identical canonical JSONL and reduced CSV,
// including across process shards and differing thread counts. The child
// binary is exp_campaign_crash_child (campaign_crash_child.cpp), wired in
// via the COMMSCHED_CRASH_CHILD compile definition.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "exp/emit.hpp"
#include "exp/sink.hpp"

namespace commsched::exp {
namespace {

std::filesystem::path test_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("commsched_resume_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << "missing " << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// Run the crash child: `env` is a space-separated VAR=value prefix list.
int run_child(const std::string& env, const std::string& args) {
  const std::string cmd =
      env + (env.empty() ? "" : " ") + COMMSCHED_CRASH_CHILD + " " + args;
  return std::system(cmd.c_str());
}

bool killed_by_sigkill(int status) {
  // sh -c may exec the child directly (parent sees the signal) or wrap it
  // (parent sees the shell's 128+SIGKILL exit code).
  return (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ||
         (WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL);
}

bool exited_cleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

// Keep relaunching with kill_after=1 (die after the first newly streamed
// cell) until a run finds nothing left to execute and exits cleanly.
// Returns the number of SIGKILL'd attempts.
int run_until_complete(const std::string& env, const std::string& stream,
                       const std::string& out_prefix) {
  int kills = 0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const int status =
        run_child(env, stream + " " + out_prefix + " 1");
    if (exited_cleanly(status)) return kills;
    EXPECT_TRUE(killed_by_sigkill(status))
        << "unexpected child status " << status;
    ++kills;
  }
  ADD_FAILURE() << "campaign never completed within 20 resumes";
  return kills;
}

TEST(CampaignResume, SigkillMidGridResumesToIdenticalBytes) {
  const auto dir = test_dir("single");
  const std::string base_stream = (dir / "base.jsonl").string();
  const std::string base_out = (dir / "base").string();
  const std::string crash_stream = (dir / "crash.jsonl").string();
  const std::string crash_out = (dir / "crash").string();

  // Uninterrupted reference run, serial.
  ASSERT_TRUE(exited_cleanly(
      run_child("COMMSCHED_THREADS=1", base_stream + " " + base_out)));

  // Crash run: 4 workers, killed after the 3rd cell lands.
  const int status = run_child("COMMSCHED_THREADS=4",
                               crash_stream + " - 3");
  ASSERT_TRUE(killed_by_sigkill(status)) << "child status " << status;
  ASSERT_TRUE(std::filesystem::exists(crash_stream));
  const CampaignStream torn = load_stream(crash_stream);
  EXPECT_GE(torn.cells.size(), 3u);
  EXPECT_LT(torn.cells.size(), 12u);

  // Resume with a different worker count; it must only run the remainder
  // and produce the exact reference bytes.
  ASSERT_TRUE(exited_cleanly(
      run_child("COMMSCHED_THREADS=2", crash_stream + " " + crash_out)));
  EXPECT_EQ(slurp(crash_out + ".jsonl"), slurp(base_out + ".jsonl"));
  EXPECT_EQ(slurp(crash_out + ".csv"), slurp(base_out + ".csv"));
}

TEST(CampaignResume, SurvivesAKillAfterEveryCell) {
  const auto dir = test_dir("repeated");
  const std::string base_stream = (dir / "base.jsonl").string();
  const std::string base_out = (dir / "base").string();
  const std::string churn_stream = (dir / "churn.jsonl").string();
  const std::string churn_out = (dir / "churn").string();

  ASSERT_TRUE(exited_cleanly(
      run_child("COMMSCHED_THREADS=2", base_stream + " " + base_out)));

  // Worst-case churn: every process dies right after its first new cell.
  const int kills =
      run_until_complete("COMMSCHED_THREADS=3", churn_stream, churn_out);
  EXPECT_GE(kills, 12);  // one death per cell of the 12-cell grid
  EXPECT_EQ(slurp(churn_out + ".jsonl"), slurp(base_out + ".jsonl"));
  EXPECT_EQ(slurp(churn_out + ".csv"), slurp(base_out + ".csv"));
}

TEST(CampaignResume, ShardedRunsWithAKilledShardMergeToIdenticalBytes) {
  const auto dir = test_dir("sharded");
  const std::string base_stream = (dir / "base.jsonl").string();
  const std::string base_out = (dir / "base").string();
  const std::string s0 = (dir / "s0.jsonl").string();
  const std::string s1 = (dir / "s1.jsonl").string();

  ASSERT_TRUE(exited_cleanly(
      run_child("COMMSCHED_THREADS=1", base_stream + " " + base_out)));

  // Shard 0 is killed after every cell and resumed until done; shard 1 runs
  // straight through on a different thread count.
  (void)run_until_complete("COMMSCHED_THREADS=2 COMMSCHED_SHARD=0/2", s0,
                           "-");
  ASSERT_TRUE(exited_cleanly(
      run_child("COMMSCHED_THREADS=4 COMMSCHED_SHARD=1/2", s1 + " -")));

  const MergedCampaign merged = merge_streams({s0, s1});
  EXPECT_EQ(canonical_jsonl(merged.header, merged.result),
            slurp(base_out + ".jsonl"));
  EXPECT_EQ(campaign_table(merged.result).render_csv(),
            slurp(base_out + ".csv"));
}

}  // namespace
}  // namespace commsched::exp
