// Determinism contract of the campaign engine (DESIGN.md "Campaign engine
// & parallel execution"): cell seeds are pure functions of the axis labels,
// and the reduced output is bit-identical at any worker count and under any
// submission order. The TSan CI job runs this binary to check the sharing
// rules (immutable Tree/CostModel across workers) under the race detector.
#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exp/emit.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "workload/synthetic.hpp"

namespace commsched::exp {
namespace {

// A machine small enough that the full grid runs in milliseconds: 4 leaves
// x 16 nodes, 60 jobs sized 2..32 nodes.
MachineCase tiny_machine(const std::string& name, std::uint64_t seed) {
  LogProfile profile;
  profile.name = name;
  profile.machine_nodes = 64;
  profile.min_exp = 1;
  profile.max_exp = 5;
  profile.pow2_fraction = 0.9;
  profile.runtime_log_median = 6.0;  // ~400 s median
  profile.runtime_sigma = 0.8;
  profile.target_load = 0.9;
  return MachineCase{name, make_two_level_tree(4, 16),
                     generate_log(profile, 60, seed)};
}

CampaignSpec tiny_spec(int threads) {
  CampaignSpec spec;
  spec.name = "test";
  spec.quiet = true;
  spec.threads = threads;
  spec.machines.push_back(tiny_machine("M0", 11));
  spec.machines.push_back(tiny_machine("M1", 22));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveDoubling, 0.6, 0.5));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kBalanced,
                     AllocatorKind::kAdaptive};
  spec.base_seeds = {7};
  return spec;
}

std::string run_csv(CampaignSpec spec) {
  CampaignRunner runner(std::move(spec));
  return campaign_table(runner.run()).render_csv();
}

TEST(SeedDerivation, DependsOnExactlyBaseMachineMixAllocator) {
  const std::uint64_t s = derive_cell_seed(7, "Theta", "RHVD", "balanced");
  // Pure function: same inputs, same output.
  EXPECT_EQ(s, derive_cell_seed(7, "Theta", "RHVD", "balanced"));
  // Every component matters.
  EXPECT_NE(s, derive_cell_seed(8, "Theta", "RHVD", "balanced"));
  EXPECT_NE(s, derive_cell_seed(7, "Mira", "RHVD", "balanced"));
  EXPECT_NE(s, derive_cell_seed(7, "Theta", "RD", "balanced"));
  EXPECT_NE(s, derive_cell_seed(7, "Theta", "RHVD", "adaptive"));
  // Label boundaries are not ambiguous (no concat collisions).
  EXPECT_NE(derive_cell_seed(7, "ab", "c", "d"),
            derive_cell_seed(7, "a", "bc", "d"));
}

TEST(SeedDerivation, MixSeedExcludesAllocatorAndDiffersFromCellSeed) {
  const std::uint64_t mix = derive_mix_seed(7, "Theta", "RHVD");
  EXPECT_EQ(mix, derive_mix_seed(7, "Theta", "RHVD"));
  EXPECT_NE(mix, derive_mix_seed(7, "Theta", "RD"));
  EXPECT_NE(mix, derive_mix_seed(7, "Mira", "RHVD"));
  // Domain separation: the two derivations never collide on equal labels.
  EXPECT_NE(mix, derive_cell_seed(7, "Theta", "RHVD", ""));
}

TEST(CampaignCells, RowMajorOrderAndFilter) {
  CampaignSpec spec = tiny_spec(1);
  const auto all = spec.cells();
  ASSERT_EQ(all.size(), 2u * 2u * 3u);
  // Row-major: machine outermost, variant innermost.
  EXPECT_EQ(all.front(), (CellCoord{0, 0, 0, 0, 0}));
  EXPECT_EQ(all[1], (CellCoord{0, 0, 1, 0, 0}));
  EXPECT_EQ(all.back(), (CellCoord{1, 1, 2, 0, 0}));

  spec.filter = [](const CampaignSpec&, const CellCoord& c) {
    return c.machine == 0;
  };
  EXPECT_EQ(spec.cells().size(), 6u);
}

TEST(CampaignRunner, ParityAcrossThreadCounts) {
  const std::string serial = run_csv(tiny_spec(1));
  const std::string parallel = run_csv(tiny_spec(8));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel) << "campaign output must not depend on the "
                                 "worker count";
}

TEST(CampaignRunner, SaAllocatorParityAcrossThreadCounts) {
  // The search allocator's anneal seed is re-mixed per cell from the cell
  // seed, so placements — and therefore the whole reduced table — must be
  // bit-identical at any worker count. One machine/mix keeps the grid small:
  // the anneal makes each cell ~an order of magnitude pricier than greedy.
  CampaignSpec spec;
  spec.name = "sa-parity";
  spec.quiet = true;
  spec.machines.push_back(tiny_machine("M0", 11));
  spec.mixes.push_back(uniform_mix(Pattern::kPairwiseAlltoall, 0.9, 0.8));
  spec.allocators = {AllocatorKind::kGreedy, AllocatorKind::kSa};
  spec.base_seeds = {7};

  CampaignSpec serial_spec = spec;
  serial_spec.threads = 1;
  CampaignSpec parallel_spec = spec;
  parallel_spec.threads = 8;
  const std::string serial = run_csv(std::move(serial_spec));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_csv(std::move(parallel_spec)))
      << "sa placements must not depend on the worker count";
}

TEST(CampaignRunner, InvariantUnderSubmissionOrder) {
  const std::string natural = run_csv(tiny_spec(4));
  CampaignSpec shuffled = tiny_spec(4);
  const std::size_t n = shuffled.cells().size();
  shuffled.submission_order.resize(n);
  std::iota(shuffled.submission_order.begin(),
            shuffled.submission_order.end(), std::size_t{0});
  std::reverse(shuffled.submission_order.begin(),
               shuffled.submission_order.end());
  EXPECT_EQ(natural, run_csv(std::move(shuffled)))
      << "campaign output must not depend on submission order";
}

TEST(CampaignRunner, RejectsNonPermutationSubmissionOrder) {
  CampaignSpec spec = tiny_spec(1);
  spec.submission_order = {0, 0, 1};
  CampaignRunner runner(std::move(spec));
  EXPECT_THROW((void)runner.run(), InvariantError);
}

TEST(CampaignRunner, CellsCarrySeedsLabelsAndCacheStats) {
  CampaignRunner runner(tiny_spec(2));
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.cells.size(), 12u);

  // Comparison group (machine 0, mix 0): same decorated log across the
  // allocator columns -> same mix_seed; distinct cell_seed per allocator.
  std::set<std::uint64_t> mix_seeds, cell_seeds;
  for (std::size_t a = 0; a < 3; ++a) {
    const CellResult& c = result.at(0, 0, a);
    mix_seeds.insert(c.mix_seed);
    cell_seeds.insert(c.cell_seed);
    EXPECT_EQ(c.machine, "M0");
    EXPECT_EQ(c.base_seed, 7u);
    // Every run decorated ~90% of 60 jobs comm-intensive: the scheduler
    // must have consulted the CommCache.
    EXPECT_GT(c.sim.cache_stats.profile_hits + c.sim.cache_stats.profile_misses,
              0u);
    EXPECT_EQ(c.summary.cache.profile_hits, c.sim.cache_stats.profile_hits);
  }
  EXPECT_EQ(mix_seeds.size(), 1u);
  EXPECT_EQ(cell_seeds.size(), 3u);

  // Default vs proposed must actually differ (the grid is not degenerate).
  EXPECT_NE(result.at(0, 0, 0).summary.total_cost,
            result.at(0, 0, 2).summary.total_cost);
}

TEST(CampaignResult, AtThrowsAndFindReturnsNullForFilteredCells) {
  CampaignSpec spec = tiny_spec(1);
  spec.filter = [](const CampaignSpec&, const CellCoord& c) {
    return c.machine == 0;
  };
  CampaignRunner runner(std::move(spec));
  const CampaignResult result = runner.run();
  EXPECT_NE(result.find(0, 0, 0), nullptr);
  EXPECT_EQ(result.find(1, 0, 0), nullptr);
  EXPECT_THROW((void)result.at(1, 0, 0), InvariantError);
}

TEST(CampaignRunner, VariantAxisAppliesSchedOptions) {
  CampaignSpec spec = tiny_spec(1);
  spec.machines.erase(spec.machines.begin() + 1, spec.machines.end());
  spec.mixes.resize(1);
  spec.allocators = {AllocatorKind::kAdaptive};
  OptionsVariant hops;
  hops.name = "pure-hops";
  hops.options.cost_options.hop_bytes = false;
  spec.variants = {OptionsVariant{}, hops};
  CampaignRunner runner(std::move(spec));
  const CampaignResult result = runner.run();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.at(0, 0, 0, 0, 1).variant, "pure-hops");
  // Same decorated log either way (variant does not feed the mix seed).
  EXPECT_EQ(result.at(0, 0, 0, 0, 0).mix_seed,
            result.at(0, 0, 0, 0, 1).mix_seed);
}

TEST(CampaignRunner, RunOneMatchesEquivalentCampaignCell) {
  const CampaignSpec spec = tiny_spec(1);
  CampaignRunner runner(tiny_spec(1));
  const CampaignResult result = runner.run();
  const SimResult solo =
      run_one(spec.machines[0], spec.mixes[0], AllocatorKind::kBalanced,
              /*base=*/nullptr, /*seed=*/7);
  const SimResult& cell = result.at(0, 0, 1).sim;
  ASSERT_EQ(solo.jobs.size(), cell.jobs.size());
  for (std::size_t i = 0; i < solo.jobs.size(); ++i) {
    EXPECT_EQ(solo.jobs[i].start_time, cell.jobs[i].start_time);
    EXPECT_EQ(solo.jobs[i].actual_runtime, cell.jobs[i].actual_runtime);
  }
}

}  // namespace
}  // namespace commsched::exp
