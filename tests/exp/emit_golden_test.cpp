// Golden-file lockdown of every emitted table/CSV/JSON shape (exp/emit.hpp,
// exp/sink.hpp, util/table.hpp): the rendered bytes of a fixed, hand-built
// campaign are compared byte for byte against files checked into
// tests/exp/golden/. Any formatting drift — column changes, escaping
// changes, number formatting — fails loudly instead of silently breaking
// downstream plotting scripts and the resume/merge byte contract.
//
// To regenerate after an *intentional* format change:
//   COMMSCHED_REGEN_GOLDEN=1 ./exp_emit_golden_test
// then review the diff and commit the new goldens.
#include "exp/emit.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "exp/sink.hpp"
#include "util/file_io.hpp"
#include "util/table.hpp"

namespace commsched::exp {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(COMMSCHED_GOLDEN_DIR) + "/" + name;
}

bool regen() { return std::getenv("COMMSCHED_REGEN_GOLDEN") != nullptr; }

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) ADD_FAILURE() << "missing golden file " << path
                        << " (run with COMMSCHED_REGEN_GOLDEN=1 to create)";
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// Compare `actual` against the checked-in golden, or rewrite the golden in
// regen mode. Byte-for-byte: no whitespace forgiveness.
void expect_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (regen()) {
    write_file_atomic(path, actual);
    SUCCEED() << "regenerated " << path;
    return;
  }
  EXPECT_EQ(read_file(path), actual) << "golden mismatch for " << name;
}

// A fixed two-cell campaign exercising both plain values and every character
// class the emitters must escape. All doubles have exact deterministic
// renderings (shortest round-trip form in JSON, fixed precision in tables).
CampaignResult golden_result() {
  CampaignResult result;

  CellResult plain;
  plain.coord = CellCoord{0, 0, 0, 0, 0};
  plain.machine = "Theta";
  plain.mix = "RHVD 0.9";
  plain.allocator = "default";
  plain.variant = "base";
  plain.base_seed = 7;
  plain.mix_seed = 1234567890123456789ULL;
  plain.cell_seed = 987654321;
  plain.summary.allocator = plain.allocator;
  plain.summary.job_count = 60;
  plain.summary.total_exec_hours = 125.5;
  plain.summary.total_wait_hours = 30.25;
  plain.summary.avg_wait_hours = 0.5041666666666667;
  plain.summary.avg_turnaround_hours = 2.5961;
  plain.summary.total_node_hours = 4100.75;
  plain.summary.avg_node_hours = 68.34583333333333;
  plain.summary.total_cost = 987654.5;
  plain.summary.avg_cost = 18283.45;
  plain.summary.makespan_hours = 48.125;
  plain.summary.cache.schedule_hits = 100;
  plain.summary.cache.schedule_misses = 4;
  plain.summary.cache.profile_hits = 5000;
  plain.summary.cache.profile_misses = 250;
  result.cells.push_back(plain);

  CellResult nasty;
  nasty.coord = CellCoord{0, 1, 1, 0, 0};
  nasty.machine = "Theta";
  nasty.mix = "mix, with \"quotes\"";
  nasty.allocator = " balanced ";  // edge whitespace must survive CSV
  nasty.variant = "tab\there";
  nasty.base_seed = 7;
  nasty.mix_seed = 42;
  nasty.cell_seed = 18446744073709551615ULL;  // UINT64_MAX
  nasty.summary.allocator = nasty.allocator;
  nasty.summary.job_count = 60;
  nasty.summary.total_exec_hours = 1.0 / 3.0;
  nasty.summary.total_wait_hours = 1e-300;
  nasty.summary.avg_wait_hours = 0.0;
  nasty.summary.avg_turnaround_hours = 1e6;
  nasty.summary.total_node_hours = 0.1;
  nasty.summary.avg_node_hours = 2.0 / 3.0;
  nasty.summary.total_cost = 9.87e20;
  nasty.summary.avg_cost = 0.125;
  nasty.summary.makespan_hours = 4503599627370497.0;  // 2^52 + 1
  nasty.summary.cache.schedule_hits = 0;
  nasty.summary.cache.schedule_misses = 0;
  nasty.summary.cache.profile_hits = 1;
  nasty.summary.cache.profile_misses = 3;
  result.cells.push_back(nasty);

  return result;
}

StreamHeader golden_header() {
  StreamHeader header;
  header.spec_name = "golden";
  header.fingerprint = 0x0123456789abcdefULL;
  header.total_cells = 2;
  return header;
}

TEST(EmitGolden, CampaignTableText) {
  expect_golden("campaign_table.txt",
                campaign_table(golden_result()).render(2));
}

TEST(EmitGolden, CampaignTableCsv) {
  expect_golden("campaign_table.csv",
                campaign_table(golden_result()).render_csv());
}

TEST(EmitGolden, CampaignJson) {
  expect_golden("campaign.json", campaign_json(golden_result()));
}

TEST(EmitGolden, CanonicalStreamJsonl) {
  expect_golden("campaign_cells.jsonl",
                canonical_jsonl(golden_header(), golden_result()));
}

// Focused CSV escaping matrix (util/table.hpp render_csv): commas, quotes,
// embedded CR/LF and edge whitespace all quote per RFC 4180; plain fields
// stay unquoted.
TEST(EmitGolden, CsvEscapingMatrix) {
  TextTable table;
  table.set_header({"case", "value"});
  table.add_row({"plain", "alpha"});
  table.add_row({"comma", "a,b"});
  table.add_row({"quote", "say \"hi\""});
  table.add_row({"newline", "line1\nline2"});
  table.add_row({"carriage", "cr\rhere"});
  table.add_row({"lead-space", " padded"});
  table.add_row({"trail-space", "padded "});
  table.add_row({"lead-tab", "\tindented"});
  table.add_row({"mixed", " \"a\",b\r\n "});
  table.add_row({"empty", ""});
  expect_golden("escaping.csv", table.render_csv());
}

// The JSON golden round-trips: parsing the emitted document and
// re-serializing its cells reproduces the exact bytes (the property the
// merge/resume byte contract rests on).
TEST(EmitGolden, JsonGoldenRoundTrips) {
  const CampaignResult result = golden_result();
  const std::string doc = campaign_json(result);
  const JsonValue parsed = parse_json(doc);
  const auto& cells = parsed.at("cells").items();
  ASSERT_EQ(cells.size(), result.cells.size());
  CampaignResult back;
  for (const JsonValue& cell : cells)
    back.cells.push_back(parse_cell_json(cell).result);
  EXPECT_EQ(campaign_json(back), doc);
}

}  // namespace
}  // namespace commsched::exp
