// Persistence/sharding contract of exp/sink.hpp (DESIGN.md "Campaign
// persistence, sharding & resume"): shard assignment is a pure function of
// the cell's axis labels, the spec fingerprint pins stream identity, cell
// records round-trip bit for bit, and {1 process, N shards + merge, resume}
// all reduce to the same bytes.
#include "exp/sink.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "exp/emit.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "workload/synthetic.hpp"

namespace commsched::exp {
namespace {

std::filesystem::path test_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("commsched_sink_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Same tiny grid shape as campaign_test.cpp: milliseconds per cell.
MachineCase tiny_machine(const std::string& name, std::uint64_t seed) {
  LogProfile profile;
  profile.name = name;
  profile.machine_nodes = 64;
  profile.min_exp = 1;
  profile.max_exp = 5;
  profile.pow2_fraction = 0.9;
  profile.runtime_log_median = 6.0;
  profile.runtime_sigma = 0.8;
  profile.target_load = 0.9;
  return MachineCase{name, make_two_level_tree(4, 16),
                     generate_log(profile, 60, seed)};
}

CampaignSpec tiny_spec(int threads) {
  CampaignSpec spec;
  spec.name = "sinktest";
  spec.quiet = true;
  spec.threads = threads;
  spec.machines.push_back(tiny_machine("M0", 11));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveDoubling, 0.6, 0.5));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kBalanced,
                     AllocatorKind::kAdaptive};
  spec.base_seeds = {7};
  return spec;
}

// A cell full of worst-case values: labels that need CSV/JSON escaping,
// full-width 64-bit seeds, doubles with no short decimal form.
CellResult nasty_cell() {
  CellResult cell;
  cell.coord = CellCoord{1, 2, 0, 3, 4};
  cell.machine = "M, \"quoted\"\nnewline";
  cell.mix = " leading space";
  cell.allocator = "adaptive\tTAB";
  cell.variant = "caf\xc3\xa9";
  cell.base_seed = std::numeric_limits<std::uint64_t>::max();
  cell.mix_seed = 0x9e3779b97f4a7c15ULL;
  cell.cell_seed = 1;
  cell.summary.allocator = cell.allocator;
  cell.summary.job_count = 60;
  cell.summary.total_exec_hours = 1.0 / 3.0;
  cell.summary.total_wait_hours = 1e-300;
  cell.summary.avg_wait_hours = std::numeric_limits<double>::denorm_min();
  cell.summary.avg_turnaround_hours = 123456.789;
  cell.summary.total_node_hours = std::numeric_limits<double>::max();
  cell.summary.avg_node_hours = 2.0 / 3.0;
  cell.summary.total_cost = 9.87e20;
  cell.summary.avg_cost = 0.1;
  cell.summary.makespan_hours = 4503599627370497.0;  // 2^52 + 1
  cell.summary.cache.schedule_hits = std::numeric_limits<std::uint64_t>::max();
  cell.summary.cache.schedule_misses = 0;
  cell.summary.cache.profile_hits = 123456789012345678ULL;
  cell.summary.cache.profile_misses = 42;
  return cell;
}

TEST(ParseShard, AcceptsWellFormedRejectsMalformed) {
  EXPECT_EQ(parse_shard("0/1"), (ShardConfig{0, 1}));
  EXPECT_EQ(parse_shard("3/8"), (ShardConfig{3, 8}));
  EXPECT_THROW((void)parse_shard(""), InvariantError);
  EXPECT_THROW((void)parse_shard("2"), InvariantError);
  EXPECT_THROW((void)parse_shard("a/b"), InvariantError);
  EXPECT_THROW((void)parse_shard("2/2"), InvariantError);
  EXPECT_THROW((void)parse_shard("-1/4"), InvariantError);
  EXPECT_THROW((void)parse_shard("1/0"), InvariantError);
}

TEST(ParseShard, EnvFallbackDefaultsToSingleShard) {
  ::unsetenv("COMMSCHED_SHARD");
  EXPECT_EQ(shard_from_env(), (ShardConfig{0, 1}));
  ::setenv("COMMSCHED_SHARD", "1/3", 1);
  EXPECT_EQ(shard_from_env(), (ShardConfig{1, 3}));
  ::unsetenv("COMMSCHED_SHARD");

  CampaignSpec spec = tiny_spec(1);
  EXPECT_EQ(resolve_shard(spec), (ShardConfig{0, 1}));
  spec.shard_index = 2;
  spec.shard_count = 1;  // index out of range
  EXPECT_THROW((void)resolve_shard(spec), InvariantError);
}

TEST(ShardOfCell, PartitionsTheGridDeterministically) {
  const CampaignSpec spec = tiny_spec(1);
  const auto coords = spec.cells();
  ASSERT_EQ(coords.size(), 6u);
  for (const int count : {1, 2, 3, 5}) {
    std::vector<std::size_t> owned(static_cast<std::size_t>(count), 0);
    for (const CellCoord& c : coords) {
      const int s = shard_of_cell(spec, c, count);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, count);
      EXPECT_EQ(s, shard_of_cell(spec, c, count));  // pure function
      ++owned[static_cast<std::size_t>(s)];
    }
    std::size_t total = 0;
    for (const std::size_t n : owned) total += n;
    EXPECT_EQ(total, coords.size());
  }
  // Execution knobs do not move cells between shards.
  CampaignSpec tuned = tiny_spec(8);
  tuned.quiet = false;
  for (const CellCoord& c : coords)
    EXPECT_EQ(shard_of_cell(spec, c, 4), shard_of_cell(tuned, c, 4));
}

TEST(SpecFingerprint, TracksIdentityNotExecutionKnobs) {
  const CampaignSpec spec = tiny_spec(1);
  const std::uint64_t base = spec_fingerprint(spec);
  EXPECT_EQ(base, spec_fingerprint(spec));

  // Execution knobs are not identity.
  CampaignSpec knobs = tiny_spec(8);
  knobs.quiet = false;
  knobs.stream_path = "/tmp/elsewhere.jsonl";
  knobs.resume = false;
  knobs.submission_order = {5, 4, 3, 2, 1, 0};
  EXPECT_EQ(base, spec_fingerprint(knobs));

  CampaignSpec renamed = tiny_spec(1);
  renamed.name = "other";
  EXPECT_NE(base, spec_fingerprint(renamed));

  CampaignSpec machine = tiny_spec(1);
  machine.machines[0].name = "M0'";
  EXPECT_NE(base, spec_fingerprint(machine));

  CampaignSpec mixes = tiny_spec(1);
  mixes.mixes.push_back(uniform_mix(Pattern::kPairwiseAlltoall, 0.5, 0.5));
  EXPECT_NE(base, spec_fingerprint(mixes));

  CampaignSpec seeds = tiny_spec(1);
  seeds.base_seeds = {8};
  EXPECT_NE(base, spec_fingerprint(seeds));

  CampaignSpec variant = tiny_spec(1);
  variant.variants[0].name = "renamed";
  EXPECT_NE(base, spec_fingerprint(variant));

  // The admitted cell list covers the filter.
  CampaignSpec filtered = tiny_spec(1);
  filtered.filter = [](const CampaignSpec&, const CellCoord& c) {
    return c.mix == 0;
  };
  EXPECT_NE(base, spec_fingerprint(filtered));
}

TEST(CellJson, RoundTripsBitForBit) {
  const CellResult cell = nasty_cell();
  const std::string line = cell_json(31, cell);
  const StreamedCell back = parse_cell_json(parse_json(line));
  EXPECT_EQ(back.cell_index, 31u);
  EXPECT_TRUE(back.result.resumed);
  EXPECT_EQ(back.wall_seconds, 0.0);  // canonical line: no wall_s
  EXPECT_EQ(back.result.coord, cell.coord);
  EXPECT_EQ(back.result.machine, cell.machine);
  EXPECT_EQ(back.result.mix, cell.mix);
  EXPECT_EQ(back.result.allocator, cell.allocator);
  EXPECT_EQ(back.result.variant, cell.variant);
  EXPECT_EQ(back.result.base_seed, cell.base_seed);
  EXPECT_EQ(back.result.mix_seed, cell.mix_seed);
  EXPECT_EQ(back.result.cell_seed, cell.cell_seed);
  EXPECT_EQ(back.result.summary.total_exec_hours,
            cell.summary.total_exec_hours);
  EXPECT_EQ(back.result.summary.avg_wait_hours, cell.summary.avg_wait_hours);
  EXPECT_EQ(back.result.summary.total_node_hours,
            cell.summary.total_node_hours);
  EXPECT_EQ(back.result.summary.makespan_hours, cell.summary.makespan_hours);
  EXPECT_EQ(back.result.summary.cache.schedule_hits,
            cell.summary.cache.schedule_hits);
  EXPECT_EQ(back.result.summary.cache.profile_hits,
            cell.summary.cache.profile_hits);
  // The decisive check: parse -> re-serialize reproduces the exact bytes.
  EXPECT_EQ(cell_json(31, back.result), line);
}

TEST(CampaignSink, WritesHeaderThenDurableLinesToleratingTornTail) {
  const auto dir = test_dir("sink");
  const std::string path = (dir / "s.jsonl").string();
  StreamHeader header;
  header.spec_name = "sinktest";
  header.fingerprint = 0xdeadbeefcafe1234ULL;
  header.total_cells = 6;
  header.shard = ShardConfig{1, 2};

  std::vector<std::size_t> streamed;
  {
    CampaignSink sink(path, header, /*fresh=*/true);
    const auto hook = [&streamed](std::size_t n) { streamed.push_back(n); };
    sink.append(4, nasty_cell(), 0.25, hook);
    sink.append(2, nasty_cell(), 1.5, hook);
    EXPECT_EQ(sink.appended(), 2u);
    EXPECT_EQ(sink.path(), path);
  }
  EXPECT_EQ(streamed, (std::vector<std::size_t>{1, 2}));

  // Simulate a SIGKILL mid-append: raw partial bytes, no terminator.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "{\"cell\":9,\"coo";
  }
  const CampaignStream stream = load_stream(path);
  EXPECT_EQ(stream.header.spec_name, header.spec_name);
  EXPECT_EQ(stream.header.fingerprint, header.fingerprint);
  EXPECT_EQ(stream.header.total_cells, 6u);
  EXPECT_EQ(stream.header.shard, (ShardConfig{1, 2}));
  ASSERT_EQ(stream.cells.size(), 2u);
  EXPECT_EQ(stream.cells[0].cell_index, 4u);
  EXPECT_EQ(stream.cells[0].wall_seconds, 0.25);
  EXPECT_EQ(stream.cells[1].cell_index, 2u);
  EXPECT_EQ(stream.cells[1].wall_seconds, 1.5);
  EXPECT_LT(stream.valid_bytes, std::filesystem::file_size(path));

  // Reopening without `fresh` keeps the existing header (no duplicate).
  {
    CampaignSink sink(path, header, /*fresh=*/false);
    EXPECT_EQ(sink.appended(), 0u);
  }
  EXPECT_THROW((void)load_stream((dir / "absent.jsonl").string()), IoError);
  { std::ofstream f(dir / "empty.jsonl"); }
  EXPECT_THROW((void)load_stream((dir / "empty.jsonl").string()), ParseError);
}

TEST(CampaignRunner, StreamsEveryCellAndResumesFromTheFile) {
  const auto dir = test_dir("resume");
  const std::string path = (dir / "campaign.jsonl").string();

  CampaignSpec spec = tiny_spec(2);
  spec.stream_path = path;
  const std::string first_csv = [&] {
    CampaignRunner runner(spec);
    const CampaignResult result = runner.run();
    for (const CellResult& cell : result.cells) EXPECT_FALSE(cell.resumed);
    return campaign_table(result).render_csv();
  }();
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(load_stream(path).cells.size(), 6u);

  // Re-running the same spec executes nothing: every cell is resumed, and
  // the reduced CSV is byte-identical.
  {
    CampaignRunner runner(spec);
    const CampaignResult result = runner.run();
    ASSERT_EQ(result.cells.size(), 6u);
    for (const CellResult& cell : result.cells) {
      EXPECT_TRUE(cell.resumed);
      EXPECT_TRUE(cell.sim.jobs.empty());  // per-job series not persisted
    }
    EXPECT_EQ(campaign_table(result).render_csv(), first_csv);
  }

  // A different campaign must refuse the stream...
  CampaignSpec other = spec;
  other.base_seeds = {8};
  EXPECT_THROW((void)CampaignRunner(other).run(), InvariantError);
  // ...unless resume is off, which truncates and starts fresh.
  other.resume = false;
  const CampaignResult fresh = CampaignRunner(other).run();
  for (const CellResult& cell : fresh.cells) EXPECT_FALSE(cell.resumed);
  EXPECT_EQ(load_stream(path).header.fingerprint, spec_fingerprint(other));
}

TEST(CampaignRunner, ShardedRunsMergeToTheSingleProcessBytes) {
  const auto dir = test_dir("shards");
  CampaignSpec full = tiny_spec(2);
  full.stream_path = (dir / "full.jsonl").string();
  const CampaignResult full_result = CampaignRunner(full).run();
  const std::string full_csv = campaign_table(full_result).render_csv();
  const std::string full_canonical =
      canonical_jsonl(make_stream_header(full), full_result);

  // Two shards, deliberately different thread counts.
  std::vector<std::string> shard_paths;
  std::size_t owned_total = 0;
  for (int i = 0; i < 2; ++i) {
    CampaignSpec shard = tiny_spec(i == 0 ? 1 : 4);
    shard.shard_index = i;
    shard.shard_count = 2;
    shard.stream_path =
        (dir / ("shard" + std::to_string(i) + ".jsonl")).string();
    shard_paths.push_back(shard.stream_path);
    owned_total += CampaignRunner(shard).run().cells.size();
  }
  EXPECT_EQ(owned_total, full_result.cells.size());

  const MergedCampaign merged = merge_streams(shard_paths);
  EXPECT_EQ(merged.header.shard, (ShardConfig{0, 1}));
  EXPECT_EQ(campaign_table(merged.result).render_csv(), full_csv);
  EXPECT_EQ(canonical_jsonl(merged.header, merged.result), full_canonical);

  // Merging the single full stream produces the same canonical bytes.
  const MergedCampaign single = merge_streams({full.stream_path});
  EXPECT_EQ(canonical_jsonl(single.header, single.result), full_canonical);
  EXPECT_EQ(campaign_json(merged.result), campaign_json(full_result));
}

TEST(MergeStreams, RejectsDuplicatesGapsAndForeignStreams) {
  const auto dir = test_dir("merge");
  CampaignSpec shard0 = tiny_spec(1);
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  shard0.stream_path = (dir / "s0.jsonl").string();
  const std::size_t owned = CampaignRunner(shard0).run().cells.size();

  // The same shard twice: every cell appears in both streams (and even an
  // empty shard pair stays incomplete).
  EXPECT_THROW(
      (void)merge_streams({shard0.stream_path, shard0.stream_path}),
      InvariantError);
  // Missing shard 1: incomplete unless explicitly allowed.
  if (owned < 6u) {
    EXPECT_THROW((void)merge_streams({shard0.stream_path}), InvariantError);
  }
  const MergedCampaign partial =
      merge_streams({shard0.stream_path}, /*require_complete=*/false);
  EXPECT_EQ(partial.result.cells.size(), owned);

  // A stream from a different campaign spec never merges in.
  CampaignSpec foreign = tiny_spec(1);
  foreign.base_seeds = {99};
  foreign.shard_index = 1;
  foreign.shard_count = 2;
  foreign.stream_path = (dir / "foreign.jsonl").string();
  (void)CampaignRunner(foreign).run();
  EXPECT_THROW(
      (void)merge_streams({shard0.stream_path, foreign.stream_path},
                          /*require_complete=*/false),
      InvariantError);
}

TEST(CampaignRunner, StreamDirEnvOptsHarnessesIntoStreaming) {
  const auto dir = test_dir("envdir");
  ::setenv("COMMSCHED_STREAM_DIR", dir.string().c_str(), 1);
  CampaignSpec spec = tiny_spec(1);
  spec.mixes.resize(1);
  spec.allocators = {AllocatorKind::kDefault};
  (void)CampaignRunner(spec).run();
  ::unsetenv("COMMSCHED_STREAM_DIR");
  const std::string path = (dir / "sinktest.jsonl").string();
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(load_stream(path).cells.size(), 1u);
}

}  // namespace
}  // namespace commsched::exp
