// The files shipped under data/ must stay loadable and consistent with the
// demo workflows in the README: a 64-node topology, a paper-configured
// slurm.conf, four sbatch scripts, and a 60-job SWF log sized for the demo
// cluster.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "sched/simulator.hpp"
#include "slurm/conf.hpp"
#include "slurm/sbatch.hpp"
#include "topology/conf.hpp"
#include "workload/mixes.hpp"
#include "workload/swf.hpp"

namespace commsched {
namespace {

std::string data_path(const std::string& name) {
  return std::string(COMMSCHED_DATA_DIR) + "/" + name;
}

TEST(BundledDataTest, DemoTopologyLoads) {
  const Tree tree = load_topology_conf(data_path("demo-topology.conf"));
  EXPECT_EQ(tree.node_count(), 64);
  EXPECT_EQ(tree.leaf_count(), 4);
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.switch_name(tree.root()), "spine");
}

TEST(BundledDataTest, DemoSlurmConfMatchesPaperSetup) {
  const SlurmConf conf = load_slurm_conf(data_path("demo-slurm.conf"));
  EXPECT_TRUE(conf.sched.easy_backfill);
  EXPECT_TRUE(conf.topology_aware);
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kAdaptive);
  EXPECT_EQ(conf.sched.queue_policy, QueuePolicy::kFifo);
  EXPECT_EQ(conf.sched.backfill_depth, 100);
}

TEST(BundledDataTest, SbatchScriptsLoadAndFitTheDemoCluster) {
  const Tree tree = load_topology_conf(data_path("demo-topology.conf"));
  const char* scripts[] = {"allgather-heavy.sbatch", "allreduce-solver.sbatch",
                           "bcast-pipeline.sbatch", "postprocess.sbatch"};
  int comm_jobs = 0;
  for (const char* script : scripts) {
    const SbatchJob job = load_sbatch_script(data_path("jobs/") + script);
    EXPECT_GE(job.record.num_nodes, 1) << script;
    EXPECT_LE(job.record.num_nodes, tree.node_count()) << script;
    EXPECT_GT(job.record.walltime, 0.0) << script;
    if (job.record.comm_intensive) ++comm_jobs;
  }
  EXPECT_EQ(comm_jobs, 3);  // three comm patterns + one compute job
}

TEST(BundledDataTest, DemoSwfReplaysOnTheDemoTopology) {
  const Tree tree = load_topology_conf(data_path("demo-topology.conf"));
  JobLog log = load_swf(data_path("demo-64node.swf"));
  ASSERT_EQ(log.size(), 60u);
  for (const auto& j : log) {
    EXPECT_LE(j.num_nodes, tree.node_count());
    EXPECT_GE(j.walltime, j.runtime);
  }
  apply_mix(log, uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.6), 5);
  const SlurmConf conf = load_slurm_conf(data_path("demo-slurm.conf"));
  const SimResult r = run_continuous(tree, log, conf.sched);
  EXPECT_EQ(r.jobs.size(), 60u);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(BundledDataTest, DataDirectoryExists) {
  EXPECT_TRUE(std::filesystem::is_directory(COMMSCHED_DATA_DIR));
}

}  // namespace
}  // namespace commsched
