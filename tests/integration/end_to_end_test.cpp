// Cross-module integration tests: the full pipeline the benchmarks use —
// synthesize a log, decorate it with a mix, replay it through the scheduler
// under every policy, and check the paper's qualitative claims hold on the
// aggregate metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/summary.hpp"
#include "sched/individual.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "topology/conf.hpp"
#include "workload/mixes.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

// A scaled-down Theta: same 366-node leaves, fewer of them, so tests stay
// fast while jobs still span switches.
Tree small_theta() { return make_two_level_tree(4, 366, "theta", "tsw"); }

JobLog small_theta_log(Pattern pattern, int n_jobs = 150,
                       std::uint64_t seed = 2024) {
  LogProfile p = theta_profile();
  p.machine_nodes = 4 * 366;
  const JobLog raw = generate_log(p, n_jobs, seed);
  JobLog log = filter_power_of_two(raw);
  apply_mix(log, uniform_mix(pattern, 0.9, 0.5), seed + 1);
  return log;
}

SimResult run(const Tree& tree, const JobLog& log, AllocatorKind kind) {
  SchedOptions opts;
  opts.allocator = kind;
  return run_continuous(tree, log, opts);
}

TEST(EndToEndTest, AllPoliciesCompleteTheSameJobs) {
  const Tree tree = small_theta();
  const JobLog log = small_theta_log(Pattern::kRecursiveHalvingVD);
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    const SimResult r = run(tree, log, kind);
    ASSERT_EQ(r.jobs.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(r.jobs[i].id, log[i].id);
      EXPECT_EQ(r.jobs[i].num_nodes, log[i].num_nodes);
    }
  }
}

TEST(EndToEndTest, JobAwarePoliciesReduceCommunicationCost) {
  // Figure 8's qualitative claim: all three proposed policies price below
  // the default on aggregate.
  const Tree tree = small_theta();
  const JobLog log = small_theta_log(Pattern::kBinomial);
  const RunSummary def = summarize(run(tree, log, AllocatorKind::kDefault));
  for (const AllocatorKind kind :
       {AllocatorKind::kGreedy, AllocatorKind::kBalanced,
        AllocatorKind::kAdaptive}) {
    const RunSummary s = summarize(run(tree, log, kind));
    EXPECT_LE(s.total_cost, def.total_cost * 1.02)
        << allocator_kind_name(kind);
  }
}

TEST(EndToEndTest, BalancedAndAdaptiveReduceExecutionTime) {
  // Table 3's qualitative claim for the communication-heavy RHVD pattern.
  const Tree tree = small_theta();
  const JobLog log = small_theta_log(Pattern::kRecursiveHalvingVD);
  const RunSummary def = summarize(run(tree, log, AllocatorKind::kDefault));
  const RunSummary bal = summarize(run(tree, log, AllocatorKind::kBalanced));
  const RunSummary ada = summarize(run(tree, log, AllocatorKind::kAdaptive));
  EXPECT_LT(bal.total_exec_hours, def.total_exec_hours);
  EXPECT_LT(ada.total_exec_hours, def.total_exec_hours);
}

TEST(EndToEndTest, HigherCommFractionYieldsLargerGains) {
  // Figure 6's trend: gains grow with the communication share (A < C).
  const Tree tree = small_theta();
  LogProfile p = theta_profile();
  p.machine_nodes = 4 * 366;
  const JobLog base = filter_power_of_two(generate_log(p, 150, 7));

  double gain_low = 0.0, gain_high = 0.0;
  for (const auto& [set, gain] :
       {std::pair<char, double*>{'A', &gain_low}, {'C', &gain_high}}) {
    JobLog log = base;
    apply_mix(log, experiment_set(set), 8);
    const RunSummary def = summarize(run(tree, log, AllocatorKind::kDefault));
    const RunSummary ada = summarize(run(tree, log, AllocatorKind::kAdaptive));
    *gain = improvement_percent(def.total_exec_hours, ada.total_exec_hours);
  }
  EXPECT_GT(gain_high, gain_low);
}

TEST(EndToEndTest, TopologyConfRoundTripGivesIdenticalSimulation) {
  // Export the topology to SLURM topology.conf, parse it back, and verify
  // the simulation is bit-identical — the conf pipeline is lossless for
  // scheduling purposes.
  const Tree tree = small_theta();
  std::istringstream conf(write_topology_conf(tree));
  const Tree reparsed = parse_topology_conf(conf);
  const JobLog log = small_theta_log(Pattern::kRecursiveDoubling, 80);
  const SimResult a = run(tree, log, AllocatorKind::kBalanced);
  const SimResult b = run(reparsed, log, AllocatorKind::kBalanced);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].start_time, b.jobs[i].start_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].actual_runtime, b.jobs[i].actual_runtime);
    EXPECT_DOUBLE_EQ(a.jobs[i].cost, b.jobs[i].cost);
  }
}

TEST(EndToEndTest, SwfExportReimportGivesIdenticalSimulation) {
  const Tree tree = small_theta();
  JobLog log = small_theta_log(Pattern::kRecursiveDoubling, 60);
  // SWF carries integer seconds; quantize first so the export is lossless.
  for (auto& j : log) {
    j.submit_time = std::floor(j.submit_time);
    j.runtime = std::floor(j.runtime);
    j.walltime = std::floor(j.walltime);
  }
  std::istringstream swf(write_swf(log));
  JobLog reloaded = parse_swf(swf);
  ASSERT_EQ(reloaded.size(), log.size());
  // SWF does not carry the paper's comm attributes; re-apply the same mix
  // deterministically.
  apply_mix(reloaded, uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.5),
            2025);
  JobLog relabeled = log;
  apply_mix(relabeled, uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.5),
            2025);
  const SimResult a = run(tree, relabeled, AllocatorKind::kGreedy);
  const SimResult b = run(tree, reloaded, AllocatorKind::kGreedy);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].start_time, b.jobs[i].start_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].cost, b.jobs[i].cost);
  }
}

TEST(EndToEndTest, IndividualRunsAgreeWithCostModelOrdering) {
  // §6.3: from a common cluster state, the proposed policies give similar
  // or better allocations than the default for every probe.
  const Tree tree = small_theta();
  JobLog probes = small_theta_log(Pattern::kRecursiveHalvingVD, 60);
  IndividualOptions opts;
  opts.occupancy = 0.5;
  const auto outcomes = run_individual(tree, probes, opts);
  ASSERT_FALSE(outcomes.empty());
  double avg_adaptive_improvement = 0.0;
  int comm = 0;
  for (const auto& o : outcomes) {
    if (!o.comm_intensive) continue;
    ++comm;
    avg_adaptive_improvement += o.improvement_percent(AllocatorKind::kAdaptive);
  }
  ASSERT_GT(comm, 0);
  EXPECT_GE(avg_adaptive_improvement / comm, 0.0);
}

TEST(EndToEndTest, WaitTimesImproveOrHoldUnderLoadForJobAware) {
  // The paper's wait-time mechanism: shorter comm jobs free nodes earlier.
  // Under a backlogged Theta-like load the job-aware policies must not
  // increase total wait by more than noise.
  const Tree tree = small_theta();
  const JobLog log = small_theta_log(Pattern::kRecursiveHalvingVD, 200, 77);
  const RunSummary def = summarize(run(tree, log, AllocatorKind::kDefault));
  const RunSummary ada = summarize(run(tree, log, AllocatorKind::kAdaptive));
  EXPECT_LE(ada.total_wait_hours, def.total_wait_hours * 1.10);
}

}  // namespace
}  // namespace commsched
