// Parser robustness sweeps: every text front end (topology.conf, SWF,
// sbatch, slurm.conf, hostlists) must respond to corrupted input with a
// clean ParseError/InvariantError or a successful parse — never a crash,
// hang, or silent partial state. Inputs are valid documents mutated
// deterministically (byte flips, truncations, deletions, duplications).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "slurm/conf.hpp"
#include "slurm/sbatch.hpp"
#include "topology/conf.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/swf.hpp"

namespace commsched {
namespace {

constexpr const char* kTopology =
    "SwitchName=s0 Nodes=n[0-3]\n"
    "SwitchName=s1 Nodes=n[4-7]\n"
    "SwitchName=s2 Switches=s[0-1]\n";

constexpr const char* kSwf =
    "; header\n"
    "1 0 10 3600 64 -1 -1 64 7200 -1 1 5 1 -1 1 -1 -1 -1\n"
    "2 100 0 1800 128 -1 -1 128 3600 -1 1 5 1 -1 1 -1 -1 -1\n";

constexpr const char* kSbatch =
    "#!/bin/bash\n"
    "#SBATCH --job-name=robust\n"
    "#SBATCH --nodes=16\n"
    "#SBATCH --time=01:30:00\n"
    "#SBATCH --comment=comm:RHVD:0.6\n";

constexpr const char* kSlurmConf =
    "SchedulerType=sched/backfill\n"
    "SelectType=select/linear\n"
    "TopologyPlugin=topology/tree\n"
    "JobAware=balanced\n";

std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  switch (rng.uniform_int(0, 4)) {
    case 0: {  // flip a byte to a printable character
      if (s.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      s[pos] = static_cast<char>(rng.uniform_int(32, 126));
      break;
    }
    case 1: {  // truncate
      const auto keep = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.resize(keep);
      break;
    }
    case 2: {  // delete a span
      if (s.size() < 4) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 3));
      s.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 16)));
      break;
    }
    case 3: {  // duplicate a span
      if (s.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      const auto len = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 24)), s.size() - pos);
      s.insert(pos, s.substr(pos, len));
      break;
    }
    default: {  // inject a junk line
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.insert(pos, "\x01garbage \xff line\n");
      break;
    }
  }
  return s;
}

template <typename ParseFn>
void sweep(const std::string& base, std::uint64_t seed, ParseFn&& parse) {
  Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    const std::string text = mutate(base, rng);
    try {
      parse(text);  // success on a still-valid mutation is fine
    } catch (const ParseError&) {
    } catch (const InvariantError&) {
    }
    // Anything else (segfault, std::bad_alloc from runaway parsing,
    // uncaught logic errors) fails the test by crashing or by gtest's
    // unexpected-exception handling.
  }
}

TEST(RobustnessTest, TopologyConfSurvivesMutations) {
  sweep(kTopology, 101, [](const std::string& text) {
    std::istringstream in(text);
    (void)parse_topology_conf(in);
  });
}

TEST(RobustnessTest, SwfSurvivesMutations) {
  sweep(kSwf, 202, [](const std::string& text) {
    std::istringstream in(text);
    (void)parse_swf(in);
  });
}

TEST(RobustnessTest, SbatchSurvivesMutations) {
  sweep(kSbatch, 303, [](const std::string& text) {
    std::istringstream in(text);
    (void)parse_sbatch_script(in);
  });
}

TEST(RobustnessTest, SlurmConfSurvivesMutations) {
  sweep(kSlurmConf, 404, [](const std::string& text) {
    std::istringstream in(text);
    (void)parse_slurm_conf(in);
  });
}

TEST(RobustnessTest, HostlistSurvivesMutations) {
  sweep("n[0-3,8,10-11],gpu[01-03]", 505, [](const std::string& text) {
    (void)expand_hostlist(text);
  });
}

}  // namespace
}  // namespace commsched
