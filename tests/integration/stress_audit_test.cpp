// Randomized differential stress test (ISSUE 2): drive all four allocation
// policies through fuzzed workloads with the runtime invariant auditor at
// full strength. Any silent state corruption — double-allocated node, stale
// backfill reservation, negative Eq. 6 cost, broken counter — turns into an
// InvariantError instead of a skewed metric. CI also runs this binary under
// ASan and UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "audit/level.hpp"
#include "core/allocator_factory.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"
#include "workload/job.hpp"

namespace commsched {
namespace {

constexpr Pattern kPatterns[] = {
    Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
    Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};

// A deliberately hostile log: bursty arrivals (many ties), node requests
// from single nodes to half the machine (power-of-two and ragged), tight
// and loose walltimes, and mixed comm/I/O classes.
JobLog fuzz_log(int n_jobs, int machine_nodes, std::uint64_t seed) {
  Rng rng(seed);
  JobLog log;
  log.reserve(static_cast<std::size_t>(n_jobs));
  double submit = 0.0;
  for (int i = 0; i < n_jobs; ++i) {
    JobRecord job;
    job.id = i + 1;
    if (rng.bernoulli(0.3)) submit += rng.uniform_real(0.0, 400.0);
    job.submit_time = submit;
    if (rng.bernoulli(0.7)) {
      const auto exp = rng.uniform_int(0, 5);  // 1..32 nodes, power of two
      job.num_nodes = std::min(1 << exp, machine_nodes);
    } else {
      job.num_nodes = static_cast<int>(
          rng.uniform_int(1, std::max(2, machine_nodes / 2)));
    }
    job.runtime = rng.uniform_real(30.0, 4000.0);
    job.walltime = job.runtime * rng.uniform_real(1.0, 4.0);
    job.comm_intensive = rng.bernoulli(0.7);
    if (job.comm_intensive) {
      job.pattern = kPatterns[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(std::size(kPatterns)) - 1))];
      job.comm_fraction = rng.uniform_real(0.1, 0.7);
    }
    job.msize = 1 << 20;
    job.io_intensive = rng.bernoulli(0.2);
    if (job.io_intensive)
      job.io_fraction = rng.uniform_real(0.05, 1.0 - job.comm_fraction);
    log.push_back(job);
  }
  return log;
}

struct StressCase {
  AllocatorKind kind;
  std::uint64_t seed;
  bool easy_backfill;
  bool enforce_walltime;
};

std::string case_name(const ::testing::TestParamInfo<StressCase>& info) {
  return std::string(allocator_kind_name(info.param.kind)) + "_seed" +
         std::to_string(info.param.seed) +
         (info.param.easy_backfill ? "_backfill" : "_fifo") +
         (info.param.enforce_walltime ? "_kill" : "");
}

class FuzzedAuditStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(FuzzedAuditStress, FullAuditRunsClean) {
  const StressCase& param = GetParam();
  const Tree tree = make_three_level_tree(2, 4, 8);  // 64 nodes
  const JobLog log = fuzz_log(160, tree.node_count(), param.seed);

  SchedOptions options;
  options.allocator = param.kind;
  options.easy_backfill = param.easy_backfill;
  options.enforce_walltime = param.enforce_walltime;
  options.audit = AuditLevel::kFull;

  const SimResult result = run_continuous(tree, log, options);

  ASSERT_EQ(result.jobs.size(), log.size());
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobResult& r = result.jobs[i];
    EXPECT_GE(r.start_time, log[i].submit_time) << "job " << r.id;
    EXPECT_GT(r.end_time, r.start_time) << "job " << r.id;
    EXPECT_GE(r.cost, 0.0) << "job " << r.id;
    EXPECT_GE(r.cost_default, 0.0) << "job " << r.id;
  }
  EXPECT_GT(result.makespan, 0.0);
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  for (const AllocatorKind kind : kAllAllocatorKinds)
    for (const std::uint64_t seed : {11u, 29u, 73u})
      cases.push_back({kind, seed, /*easy_backfill=*/true,
                       /*enforce_walltime=*/false});
  // Policy-axis variants on one policy each keep the matrix small.
  cases.push_back({AllocatorKind::kAdaptive, 5, /*easy_backfill=*/false,
                   /*enforce_walltime=*/false});
  cases.push_back({AllocatorKind::kBalanced, 5, /*easy_backfill=*/true,
                   /*enforce_walltime=*/true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, FuzzedAuditStress,
                         ::testing::ValuesIn(stress_cases()), case_name);

// The cheap level must accept the same runs (it is a strict subset of full).
TEST(FuzzedAuditStressCheap, CheapAuditRunsClean) {
  const Tree tree = make_three_level_tree(2, 4, 8);
  const JobLog log = fuzz_log(160, tree.node_count(), 97);
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    SchedOptions options;
    options.allocator = kind;
    options.audit = AuditLevel::kCheap;
    const SimResult result = run_continuous(tree, log, options);
    EXPECT_EQ(result.jobs.size(), log.size());
  }
}

// The COMMSCHED_AUDIT env var must reach the simulator when the config
// field is unset.
TEST(FuzzedAuditStressEnv, EnvVarSelectsFullAudit) {
  ASSERT_EQ(setenv("COMMSCHED_AUDIT", "full", 1), 0);
  const Tree tree = make_three_level_tree(2, 2, 4);
  const JobLog log = fuzz_log(40, tree.node_count(), 3);
  SchedOptions options;  // audit unset -> env
  options.allocator = AllocatorKind::kAdaptive;
  const SimResult result = run_continuous(tree, log, options);
  EXPECT_EQ(result.jobs.size(), log.size());
  ASSERT_EQ(unsetenv("COMMSCHED_AUDIT"), 0);
}

}  // namespace
}  // namespace commsched
