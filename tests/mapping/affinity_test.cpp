#include "mapping/affinity.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cluster/state.hpp"
#include "core/cost_model.hpp"
#include "mapping/reorder.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(AffinityMatrixTest, AccumulatesBytesSymmetrically) {
  CommSchedule sched;
  CommStep step;
  step.msize = 10.0;
  step.repeat = 3;
  step.pairs = {{0, 1}, {2, 3}};
  sched.push_back(step);
  CommStep step2;
  step2.msize = 5.0;
  step2.pairs = {{0, 1}};
  sched.push_back(step2);

  const AffinityMatrix m(4, sched);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 35.0);  // 10*3 + 5
  EXPECT_DOUBLE_EQ(m.at(1, 0), 35.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 30.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  const int group[] = {1, 2};
  EXPECT_DOUBLE_EQ(m.to_group(0, group), 35.0);
}

TEST(AffinityMatrixTest, RejectsOversizedAndBadRanks) {
  const CommSchedule empty;
  EXPECT_THROW(AffinityMatrix(513, empty), InvariantError);
  CommSchedule bad;
  CommStep step;
  step.msize = 1.0;
  step.pairs = {{0, 7}};
  bad.push_back(step);
  EXPECT_THROW(AffinityMatrix(4, bad), InvariantError);
}

// A schedule whose ONLY heavy exchanges are between ranks i and i + p/2:
// the opposite of what rank-adjacent (switch-major) mapping optimizes.
CommSchedule far_heavy_schedule(int p) {
  CommSchedule sched;
  CommStep heavy;
  heavy.msize = 100.0;
  for (int i = 0; i < p / 2; ++i) heavy.pairs.emplace_back(i, i + p / 2);
  sched.push_back(heavy);
  CommStep light;
  light.msize = 1.0;
  for (int i = 0; i + 1 < p; i += 2) light.pairs.emplace_back(i, i + 1);
  sched.push_back(light);
  return sched;
}

TEST(AffinityMapTest, CoLocatesHeavyFarPairs) {
  const Tree tree = make_two_level_tree(2, 4);
  const std::vector<NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  const auto sched = far_heavy_schedule(8);
  const auto mapped = affinity_map(tree, nodes, sched);
  // Every heavy pair (i, i+4) must share a leaf.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(tree.leaf_of(mapped[static_cast<std::size_t>(i)]),
              tree.leaf_of(mapped[static_cast<std::size_t>(i + 4)]))
        << "heavy pair (" << i << "," << i + 4 << ") split across leaves";
}

TEST(AffinityMapTest, BeatsSwitchMajorOnFarHeavySchedules) {
  const Tree tree = make_two_level_tree(2, 4);
  ClusterState state(tree);
  const CostModel model(tree, CostOptions{.hop_bytes = true});
  const std::vector<NodeId> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  const auto sched = far_heavy_schedule(8);
  const auto major = switch_major_order(tree, nodes);
  const auto mapped = affinity_map(tree, nodes, sched);
  EXPECT_LT(model.candidate_cost(state, mapped, true, sched),
            model.candidate_cost(state, major, true, sched));
}

TEST(AffinityMapTest, IsAPermutationHostingEveryRank) {
  const Tree tree = make_two_level_tree(3, 4);
  const std::vector<NodeId> nodes{0, 1, 4, 5, 8, 9, 10, 2};
  const auto sched =
      make_schedule(Pattern::kRecursiveHalvingVD, 8, 1024.0);
  const auto mapped = affinity_map(tree, nodes, sched);
  ASSERT_EQ(mapped.size(), nodes.size());
  const std::set<NodeId> a(nodes.begin(), nodes.end());
  const std::set<NodeId> b(mapped.begin(), mapped.end());
  EXPECT_EQ(a, b);
  for (const NodeId n : mapped) EXPECT_NE(n, kInvalidNode);
}

TEST(AffinityMapTest, NeverWorseThanSwitchMajorForRhvd) {
  // For the vector-doubling allgather the greedy grouping should find the
  // same contiguous-block structure switch-major produces (or an equally
  // good permutation of it).
  const Tree tree = make_two_level_tree(2, 8);
  ClusterState state(tree);
  const CostModel model(tree, CostOptions{.hop_bytes = true});
  const std::vector<NodeId> nodes{0, 1, 2, 3, 8, 9, 10, 11};
  const auto sched = make_schedule(Pattern::kRecursiveHalvingVD, 8, 1.0);
  const auto major = switch_major_order(tree, nodes);
  const auto mapped = affinity_map(tree, nodes, sched);
  EXPECT_LE(model.candidate_cost(state, mapped, true, sched),
            model.candidate_cost(state, major, true, sched) + 1e-9);
}

TEST(AffinityMapTest, SingleLeafIsTrivial) {
  const Tree tree = make_two_level_tree(2, 8);
  const std::vector<NodeId> nodes{3, 1, 2, 0};
  const auto sched = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  const auto mapped = affinity_map(tree, nodes, sched);
  EXPECT_EQ(mapped, (std::vector<NodeId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace commsched
