#include "mapping/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "topology/builders.hpp"

namespace commsched {
namespace {

TEST(SwitchMajorOrderTest, GroupsNodesByLeaf) {
  const Tree tree = make_figure2_tree();
  // Interleaved leaves: n0(s0), n4(s1), n1(s0), n5(s1).
  const std::vector<NodeId> nodes{0, 4, 1, 5};
  const auto ordered = switch_major_order(tree, nodes);
  // s0 appears first -> its nodes lead, ascending ids within each leaf.
  EXPECT_EQ(ordered, (std::vector<NodeId>{0, 1, 4, 5}));
}

TEST(SwitchMajorOrderTest, PreservesLeafFirstAppearance) {
  const Tree tree = make_figure2_tree();
  const std::vector<NodeId> nodes{5, 0, 4};
  const auto ordered = switch_major_order(tree, nodes);
  // s1 seen first -> s1 block first.
  EXPECT_EQ(ordered, (std::vector<NodeId>{4, 5, 0}));
}

TEST(SwitchMajorOrderTest, IsAPermutation) {
  const Tree tree = make_three_level_tree(2, 2, 4);
  const std::vector<NodeId> nodes{13, 2, 7, 0, 9, 14};
  auto ordered = switch_major_order(tree, nodes);
  EXPECT_EQ(ordered.size(), nodes.size());
  std::set<NodeId> a(nodes.begin(), nodes.end());
  std::set<NodeId> b(ordered.begin(), ordered.end());
  EXPECT_EQ(a, b);
}

class MappingFixture : public ::testing::Test {
 protected:
  MappingFixture()
      : tree_(make_two_level_tree(2, 8)), state_(tree_), model_(tree_) {}
  Tree tree_;
  ClusterState state_;
  CostModel model_;
};

TEST_F(MappingFixture, ImproveMappingNeverWorseThanSwitchMajor) {
  const auto schedule = make_schedule(Pattern::kRecursiveHalvingVD, 8, 1.0);
  // A deliberately bad interleaving across the two leaves.
  const std::vector<NodeId> nodes{0, 8, 1, 9, 2, 10, 3, 11};
  const auto base = switch_major_order(tree_, nodes);
  const auto improved =
      improve_mapping(state_, model_, schedule, nodes, true);
  EXPECT_LE(model_.candidate_cost(state_, improved, true, schedule),
            model_.candidate_cost(state_, base, true, schedule) + 1e-9);
}

TEST_F(MappingFixture, ImproveMappingBeatsInterleavedOrder) {
  // Under the pure Eq. 6 (hops-only) cost every 4+4 split of an RHVD job
  // prices the same — exactly one step must cross switches. The hop-bytes
  // variant breaks the tie: crossing on the *light* first step is cheaper
  // than crossing on the heavy last step, so the interleaved order (which
  // crosses at the end) must improve.
  const CostModel hop_bytes_model(tree_, CostOptions{.hop_bytes = true});
  const auto schedule = make_schedule(Pattern::kRecursiveHalvingVD, 8, 1.0);
  const std::vector<NodeId> interleaved{0, 8, 1, 9, 2, 10, 3, 11};
  const double before =
      hop_bytes_model.candidate_cost(state_, interleaved, true, schedule);
  const auto improved = improve_mapping(state_, hop_bytes_model, schedule,
                                        interleaved, true);
  const double after =
      hop_bytes_model.candidate_cost(state_, improved, true, schedule);
  EXPECT_LT(after, before);
}

TEST_F(MappingFixture, ImproveMappingIsAPermutation) {
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 8, 1.0);
  const std::vector<NodeId> nodes{0, 8, 1, 9, 2, 10, 3, 11};
  const auto improved =
      improve_mapping(state_, model_, schedule, nodes, true);
  std::set<NodeId> a(nodes.begin(), nodes.end());
  std::set<NodeId> b(improved.begin(), improved.end());
  EXPECT_EQ(a, b);
}

TEST_F(MappingFixture, LargeJobsSkipTheSwapScan) {
  // With max_swap_nodes = 4, an 8-rank job falls back to switch-major.
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 8, 1.0);
  const std::vector<NodeId> nodes{0, 8, 1, 9, 2, 10, 3, 11};
  MappingOptions opts;
  opts.max_swap_nodes = 4;
  const auto mapped =
      improve_mapping(state_, model_, schedule, nodes, true, opts);
  EXPECT_EQ(mapped, switch_major_order(tree_, nodes));
}

TEST_F(MappingFixture, SingleLeafAllocationIsAlreadyOptimal) {
  const auto schedule = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  const std::vector<NodeId> nodes{3, 1, 0, 2};  // all on leaf 0
  const auto improved =
      improve_mapping(state_, model_, schedule, nodes, true);
  // All same-leaf orderings cost the same; the result is the sorted block.
  EXPECT_EQ(improved, (std::vector<NodeId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace commsched
