#include "metrics/extended.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace commsched {
namespace {

JobResult jr(int nodes, double submit, double start, double runtime,
             bool comm = false) {
  JobResult r;
  r.num_nodes = nodes;
  r.submit_time = submit;
  r.start_time = start;
  r.actual_runtime = runtime;
  r.original_runtime = runtime;
  r.end_time = start + runtime;
  r.comm_intensive = comm;
  return r;
}

TEST(DistSummaryTest, KnownDistribution) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const DistSummary s = summarize_distribution(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(DistSummaryTest, EmptyIsZero) {
  const DistSummary s = summarize_distribution({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(BoundedSlowdownTest, Definition) {
  // wait 90, run 10 -> (90+10)/10 = 10.
  EXPECT_DOUBLE_EQ(bounded_slowdown(jr(1, 0.0, 90.0, 10.0)), 10.0);
  // no wait -> 1.
  EXPECT_DOUBLE_EQ(bounded_slowdown(jr(1, 0.0, 0.0, 100.0)), 1.0);
  // tiny job: tau bounds the denominator. wait 5, run 1 -> (5+1)/10.
  EXPECT_DOUBLE_EQ(bounded_slowdown(jr(1, 0.0, 5.0, 1.0)), 1.0);
  EXPECT_DOUBLE_EQ(bounded_slowdown(jr(1, 0.0, 95.0, 1.0)), 9.6);
}

TEST(BoundedSlowdownTest, RejectsBadTau) {
  EXPECT_THROW(bounded_slowdown(jr(1, 0, 0, 1), 0.0), InvariantError);
}

TEST(SlowdownSummaryTest, AggregatesOverRun) {
  SimResult r;
  r.jobs = {jr(1, 0.0, 0.0, 100.0), jr(1, 0.0, 100.0, 100.0)};
  const DistSummary s = slowdown_summary(r);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, (1.0 + 2.0) / 2.0);
}

TEST(WaitSummaryTest, Percentiles) {
  SimResult r;
  for (int i = 0; i < 10; ++i)
    r.jobs.push_back(jr(1, 0.0, static_cast<double>(i * 10), 5.0));
  const DistSummary s = wait_summary(r);
  EXPECT_DOUBLE_EQ(s.max, 90.0);
  EXPECT_DOUBLE_EQ(s.mean, 45.0);
}

TEST(ClassSummaryTest, SplitsByCommFlag) {
  SimResult r;
  r.allocator_name = "x";
  r.makespan = 1000.0;
  r.jobs = {jr(2, 0, 0, 3600.0, true), jr(4, 0, 0, 3600.0, false),
            jr(8, 0, 0, 7200.0, true)};
  const RunSummary comm = summarize_class(r, true);
  const RunSummary compute = summarize_class(r, false);
  EXPECT_EQ(comm.job_count, 2u);
  EXPECT_EQ(compute.job_count, 1u);
  EXPECT_DOUBLE_EQ(comm.total_exec_hours, 3.0);
  EXPECT_DOUBLE_EQ(compute.total_exec_hours, 1.0);
}

TEST(WalltimeKillFractionTest, CountsFlags) {
  SimResult r;
  r.jobs = {jr(1, 0, 0, 1), jr(1, 0, 0, 1), jr(1, 0, 0, 1), jr(1, 0, 0, 1)};
  r.jobs[1].hit_walltime = true;
  EXPECT_DOUBLE_EQ(walltime_kill_fraction(r), 0.25);
  EXPECT_DOUBLE_EQ(walltime_kill_fraction(SimResult{}), 0.0);
}

TEST(UtilizationTest, SingleFullMachineJob) {
  SimResult r;
  r.makespan = 100.0;
  r.jobs = {jr(8, 0.0, 0.0, 100.0)};
  const auto util = utilization_timeline(r, 8, 10.0);
  ASSERT_EQ(util.size(), 10u);
  for (const double u : util) EXPECT_DOUBLE_EQ(u, 1.0);
  EXPECT_DOUBLE_EQ(average_utilization(r, 8), 1.0);
}

TEST(UtilizationTest, PartialOverlapSplitsAcrossBuckets) {
  SimResult r;
  r.makespan = 20.0;
  r.jobs = {jr(4, 0.0, 5.0, 10.0)};  // busy 5..15 on half the machine
  const auto util = utilization_timeline(r, 8, 10.0);
  ASSERT_EQ(util.size(), 2u);
  EXPECT_DOUBLE_EQ(util[0], 0.25);  // 4 nodes for 5 of 10 s
  EXPECT_DOUBLE_EQ(util[1], 0.25);
  EXPECT_DOUBLE_EQ(average_utilization(r, 8), 4.0 * 10.0 / (20.0 * 8.0));
}

TEST(UtilizationTest, EmptyRun) {
  EXPECT_TRUE(utilization_timeline(SimResult{}, 8, 10.0).empty());
  EXPECT_DOUBLE_EQ(average_utilization(SimResult{}, 8), 0.0);
}

TEST(UtilizationTest, RejectsBadArguments) {
  SimResult r;
  r.makespan = 10.0;
  EXPECT_THROW(utilization_timeline(r, 0, 10.0), InvariantError);
  EXPECT_THROW(utilization_timeline(r, 8, 0.0), InvariantError);
  EXPECT_THROW(average_utilization(r, 0), InvariantError);
}

}  // namespace
}  // namespace commsched
