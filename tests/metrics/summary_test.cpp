#include "metrics/summary.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace commsched {
namespace {

JobResult jr(WorkloadJobId id, int nodes, double submit, double start,
             double runtime, bool comm, double cost) {
  JobResult r;
  r.id = id;
  r.num_nodes = nodes;
  r.submit_time = submit;
  r.start_time = start;
  r.actual_runtime = runtime;
  r.original_runtime = runtime;
  r.end_time = start + runtime;
  r.comm_intensive = comm;
  r.cost = cost;
  return r;
}

TEST(JobResultTest, DerivedQuantities) {
  const JobResult r = jr(1, 4, 100.0, 160.0, 3600.0, true, 10.0);
  EXPECT_DOUBLE_EQ(r.wait_time(), 60.0);
  EXPECT_DOUBLE_EQ(r.turnaround_time(), 3660.0);
  EXPECT_DOUBLE_EQ(r.node_hours(), 4.0);
}

TEST(SummarizeTest, AggregatesHoursAndCosts) {
  SimResult result;
  result.allocator_name = "balanced";
  result.makespan = 7200.0;
  result.jobs = {jr(1, 2, 0.0, 0.0, 3600.0, true, 10.0),
                 jr(2, 4, 0.0, 1800.0, 7200.0, false, 0.0),
                 jr(3, 1, 900.0, 900.0, 1800.0, true, 20.0)};
  const RunSummary s = summarize(result);
  EXPECT_EQ(s.allocator, "balanced");
  EXPECT_EQ(s.job_count, 3u);
  EXPECT_DOUBLE_EQ(s.total_exec_hours, 1.0 + 2.0 + 0.5);
  EXPECT_DOUBLE_EQ(s.total_wait_hours, 0.5);
  EXPECT_DOUBLE_EQ(s.avg_wait_hours, 0.5 / 3.0);
  EXPECT_DOUBLE_EQ(s.total_node_hours, 2.0 + 8.0 + 0.5);
  EXPECT_DOUBLE_EQ(s.total_cost, 30.0);
  EXPECT_DOUBLE_EQ(s.avg_cost, 15.0);  // over the two comm jobs
  EXPECT_DOUBLE_EQ(s.makespan_hours, 2.0);
  // Turnarounds: 1h, 2.5h, 0.5h -> mean 4/3.
  EXPECT_NEAR(s.avg_turnaround_hours, 4.0 / 3.0, 1e-12);
}

TEST(SummarizeTest, EmptyRun) {
  SimResult result;
  result.allocator_name = "default";
  const RunSummary s = summarize(result);
  EXPECT_EQ(s.job_count, 0u);
  EXPECT_DOUBLE_EQ(s.total_exec_hours, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_cost, 0.0);
}

TEST(ImprovementTest, Percentages) {
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(improvement_percent(0.0, 5.0), 0.0);
}

TEST(BinEdgesTest, PowersOfTwo) {
  const auto edges = power_of_two_bin_edges(4, 8, 2);
  // 16, 64, 256, plus make-whole edge 256? max 2^8=256 reached by stride:
  // 16, 64, 256 then closing edge 512.
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 16.0);
  EXPECT_DOUBLE_EQ(edges[1], 64.0);
  EXPECT_DOUBLE_EQ(edges[2], 256.0);
  EXPECT_DOUBLE_EQ(edges[3], 512.0);
}

TEST(BinEdgesTest, StrideNotDividingRangeStillCoversMax) {
  const auto edges = power_of_two_bin_edges(4, 7, 2);  // 16, 64, then 128, 256
  EXPECT_DOUBLE_EQ(edges[edges.size() - 2], 128.0);
  EXPECT_DOUBLE_EQ(edges.back(), 256.0);
}

TEST(CostBinningTest, AveragesPerNodeRange) {
  SimResult result;
  result.jobs = {jr(1, 16, 0, 0, 100, true, 10.0),
                 jr(2, 20, 0, 0, 100, true, 30.0),
                 jr(3, 100, 0, 0, 100, true, 50.0),
                 jr(4, 100, 0, 0, 100, false, 999.0)};  // compute: excluded
  const std::vector<double> edges{16.0, 64.0, 256.0};
  const auto means = average_cost_by_node_bin(result, edges);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 20.0);  // (10+30)/2
  EXPECT_DOUBLE_EQ(means[1], 50.0);
  const auto counts = job_count_by_node_bin(result, edges);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

}  // namespace
}  // namespace commsched
