#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

constexpr double kGigE = 125.0e6;

TEST(FlowNetworkTest, LinkCountAndCapacities) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  EXPECT_EQ(net.link_count(), 8 + 3);  // 8 access links + 3 switch slots
  for (int l = 0; l < 8; ++l) EXPECT_DOUBLE_EQ(net.capacity(l), kGigE);
  // Root "uplink" slot exists but has zero capacity and is never routed.
  EXPECT_DOUBLE_EQ(net.capacity(8 + static_cast<int>(tree.root())), 0.0);
}

TEST(FlowNetworkTest, UplinkMultiplierThickensUpperLevels) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{.node_link_bw = 100.0,
                                         .uplink_multiplier = 4.0});
  const SwitchId s0 = *tree.switch_by_name("s0");
  EXPECT_DOUBLE_EQ(net.capacity(8 + static_cast<int>(s0)), 400.0);
}

TEST(FlowNetworkTest, SameLeafPathUsesOnlyAccessLinks) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  const auto path = net.path(0, 1);
  EXPECT_EQ(path, (std::vector<int>{0, 1}));
}

TEST(FlowNetworkTest, CrossLeafPathIncludesBothUplinks) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  const SwitchId s0 = *tree.switch_by_name("s0");
  const SwitchId s1 = *tree.switch_by_name("s1");
  const auto path = net.path(0, 4);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 8 + static_cast<int>(s0));
  EXPECT_EQ(path[2], 8 + static_cast<int>(s1));
  EXPECT_EQ(path[3], 4);
}

TEST(FlowNetworkTest, ThreeLevelPathClimbsToLca) {
  const Tree tree = make_three_level_tree(2, 2, 2);  // 8 nodes
  const FlowNetwork net(tree, LinkConfig{});
  // Nodes 0 and 7 are in different groups: 2 access + 2 leaf uplinks +
  // 2 group uplinks.
  EXPECT_EQ(net.path(0, 7).size(), 6u);
  // Same group, different leaf: 2 access + 2 leaf uplinks.
  EXPECT_EQ(net.path(0, 2).size(), 4u);
}

TEST(FlowNetworkTest, PathToSelfThrows) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  EXPECT_THROW(net.path(3, 3), InvariantError);
}

Flow make_flow(const FlowNetwork& net, NodeId a, NodeId b, double bytes) {
  Flow f;
  f.links = net.path(a, b);
  f.remaining = bytes;
  return f;
}

TEST(MaxMinTest, SingleFlowGetsFullBandwidth) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  std::vector<Flow> flows{make_flow(net, 0, 1, 1e6)};
  net.compute_maxmin_rates(flows);
  EXPECT_DOUBLE_EQ(flows[0].rate, kGigE);
}

TEST(MaxMinTest, SharedAccessLinkSplitsEvenly) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // Both flows terminate at node 1 -> share its access link.
  std::vector<Flow> flows{make_flow(net, 0, 1, 1e6),
                          make_flow(net, 2, 1, 1e6)};
  net.compute_maxmin_rates(flows);
  EXPECT_DOUBLE_EQ(flows[0].rate, kGigE / 2);
  EXPECT_DOUBLE_EQ(flows[1].rate, kGigE / 2);
}

TEST(MaxMinTest, DisjointFlowsDoNotInterfere) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  std::vector<Flow> flows{make_flow(net, 0, 1, 1e6),
                          make_flow(net, 2, 3, 1e6),
                          make_flow(net, 4, 5, 1e6)};
  net.compute_maxmin_rates(flows);
  for (const Flow& f : flows) EXPECT_DOUBLE_EQ(f.rate, kGigE);
}

TEST(MaxMinTest, UplinkContentionThrottlesCrossSwitchFlows) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // Three cross-switch flows share both leaf uplinks -> a third each.
  std::vector<Flow> flows{make_flow(net, 0, 4, 1e6),
                          make_flow(net, 1, 5, 1e6),
                          make_flow(net, 2, 6, 1e6)};
  net.compute_maxmin_rates(flows);
  for (const Flow& f : flows) EXPECT_NEAR(f.rate, kGigE / 3, 1.0);
}

TEST(MaxMinTest, BottleneckLeftoverGoesToUnconstrainedFlow) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // Two flows share node 0's access link; one of them also crosses the
  // uplink where a third flow lives. Max-min: flows on link0 get 1/2 each;
  // the third flow then gets the remaining uplink capacity.
  std::vector<Flow> flows{make_flow(net, 0, 1, 1e6),
                          make_flow(net, 0, 4, 1e6),
                          make_flow(net, 2, 5, 1e6)};
  net.compute_maxmin_rates(flows);
  EXPECT_DOUBLE_EQ(flows[0].rate, kGigE / 2);
  EXPECT_DOUBLE_EQ(flows[1].rate, kGigE / 2);
  EXPECT_DOUBLE_EQ(flows[2].rate, kGigE / 2);
}

TEST(MaxMinTest, NoLinkIsOversubscribed) {
  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});
  // A dense random-ish flow pattern across the cluster.
  std::vector<Flow> flows;
  for (NodeId a = 0; a < 20; ++a)
    flows.push_back(make_flow(net, a, (a + 17) % 50, 1e6));
  net.compute_maxmin_rates(flows);
  std::vector<double> load(static_cast<std::size_t>(net.link_count()), 0.0);
  for (const Flow& f : flows) {
    EXPECT_GT(f.rate, 0.0);
    for (const int l : f.links) load[static_cast<std::size_t>(l)] += f.rate;
  }
  for (int l = 0; l < net.link_count(); ++l)
    EXPECT_LE(load[static_cast<std::size_t>(l)], net.capacity(l) + 1e-3);
}

// The defining property of a max-min fair allocation: every flow has a
// bottleneck link — a saturated link on its path where no other flow gets
// a higher rate. (Bertsekas & Gallager's characterization.)
TEST(MaxMinTest, EveryFlowHasABottleneckLink) {
  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});
  std::vector<Flow> flows;
  // A deterministic but irregular mesh of flows.
  for (int k = 0; k < 30; ++k) {
    const NodeId a = (k * 7) % 50;
    const NodeId b = (k * 13 + 5) % 50;
    if (a == b) continue;
    Flow f;
    f.links = net.path(a, b);
    f.remaining = 1e6;
    flows.push_back(std::move(f));
  }
  net.compute_maxmin_rates(flows);

  std::vector<double> load(static_cast<std::size_t>(net.link_count()), 0.0);
  for (const Flow& f : flows)
    for (const int l : f.links) load[static_cast<std::size_t>(l)] += f.rate;

  constexpr double kEps = 1.0;  // bytes/s slack on 125 MB/s links
  for (const Flow& f : flows) {
    bool has_bottleneck = false;
    for (const int l : f.links) {
      if (load[static_cast<std::size_t>(l)] < net.capacity(l) - kEps)
        continue;  // not saturated
      double max_rate_on_link = 0.0;
      for (const Flow& g : flows)
        if (std::find(g.links.begin(), g.links.end(), l) != g.links.end())
          max_rate_on_link = std::max(max_rate_on_link, g.rate);
      if (f.rate >= max_rate_on_link - kEps) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow lacks a bottleneck link";
  }
}

TEST(MaxMinTest, FinishedFlowsAreIgnored) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  std::vector<Flow> flows{make_flow(net, 0, 1, 0.0),
                          make_flow(net, 0, 1, 1e6)};
  net.compute_maxmin_rates(flows);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, kGigE);  // dead flow frees the link
}

}  // namespace
}  // namespace commsched
