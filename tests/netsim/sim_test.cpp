#include "netsim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace commsched {
namespace {

constexpr double kGigE = 125.0e6;

RepeatingJob pair_job(std::vector<NodeId> nodes, double msize, int rounds = 1,
                      double period = 0.0, double first_start = 0.0) {
  RepeatingJob j;
  j.name = "job";
  j.nodes = std::move(nodes);
  j.pattern = Pattern::kRecursiveDoubling;
  j.msize = msize;
  j.rounds = rounds;
  j.period = period;
  j.first_start = first_start;
  return j;
}

TEST(NetSimTest, SinglePairTransferTimeIsExact) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // One RD exchange of 125 MB over a 125 MB/s path: exactly 1 second.
  const auto r = simulate_network(net, {pair_job({0, 1}, kGigE)}, 10.0);
  ASSERT_GE(r.per_job[0].size(), 2u);  // repeats back-to-back
  EXPECT_NEAR(r.per_job[0][0].duration, 1.0, 1e-9);
  EXPECT_NEAR(r.per_job[0][0].start, 0.0, 1e-9);
  EXPECT_NEAR(r.per_job[0][1].start, 1.0, 1e-9);
}

TEST(NetSimTest, RoundsMultiplyDuration) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  const auto r =
      simulate_network(net, {pair_job({0, 1}, kGigE, /*rounds=*/3)}, 10.0);
  ASSERT_FALSE(r.per_job[0].empty());
  EXPECT_NEAR(r.per_job[0][0].duration, 3.0, 1e-9);
}

TEST(NetSimTest, MultiStepCollectiveSerializesSteps) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // RD over nodes {0,1,2,3} (same leaf): 2 steps, each pairwise-disjoint on
  // access links, so each step runs at full rate: 2 * msize / bw.
  const auto r = simulate_network(net, {pair_job({0, 1, 2, 3}, kGigE)}, 10.0);
  ASSERT_FALSE(r.per_job[0].empty());
  EXPECT_NEAR(r.per_job[0][0].duration, 2.0, 1e-9);
}

TEST(NetSimTest, SharedUplinkDoublesExchangeTime) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // Two independent cross-switch pair jobs: both flows share each leaf
  // uplink -> each runs at half rate.
  const auto r = simulate_network(
      net, {pair_job({0, 4}, kGigE), pair_job({1, 5}, kGigE)}, 10.0);
  ASSERT_FALSE(r.per_job[0].empty());
  ASSERT_FALSE(r.per_job[1].empty());
  EXPECT_NEAR(r.per_job[0][0].duration, 2.0, 1e-9);
  EXPECT_NEAR(r.per_job[1][0].duration, 2.0, 1e-9);
}

TEST(NetSimTest, PeriodicJobHonorsItsSchedule) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // A fast job launched every 4 s.
  const auto r = simulate_network(
      net, {pair_job({0, 1}, kGigE / 4, 1, /*period=*/4.0)}, 20.0);
  const auto& execs = r.per_job[0];
  ASSERT_GE(execs.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(execs[k].start, 4.0 * static_cast<double>(k), 1e-9);
}

TEST(NetSimTest, DelayedFirstStart) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  const auto r = simulate_network(
      net, {pair_job({0, 1}, kGigE, 1, 0.0, /*first_start=*/5.0)}, 8.0);
  ASSERT_FALSE(r.per_job[0].empty());
  EXPECT_NEAR(r.per_job[0][0].start, 5.0, 1e-9);
}

TEST(NetSimTest, HorizonDiscardsInFlightExecution) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  // 1-second executions, horizon 2.5 s -> exactly 2 completed samples.
  const auto r = simulate_network(net, {pair_job({0, 1}, kGigE)}, 2.5);
  EXPECT_EQ(r.per_job[0].size(), 2u);
}

TEST(NetSimTest, Figure1ShapeInterferenceSpikes) {
  // The paper's Figure 1 in miniature: J1 (8 nodes, 4+4 across two
  // switches) runs continuously; J2 (12 nodes, 6+6) arrives periodically.
  // J1's execution time must spike while J2 overlaps and return to the
  // baseline in between.
  // Node lists are interleaved across the two switches — the
  // communication-oblivious placement the paper's default SLURM produced,
  // which makes the heavy (vector-doubled) RHVD exchanges cross-switch.
  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});
  RepeatingJob j1;
  j1.name = "J1";
  j1.nodes = {0, 16, 1, 17, 2, 18, 3, 19};  // 4 on sw0 + 4 on sw1
  j1.pattern = Pattern::kRecursiveHalvingVD;
  j1.msize = 1 << 20;
  j1.rounds = 4;
  RepeatingJob j2;
  j2.name = "J2";
  j2.nodes = {4, 20, 5, 21, 6, 22, 7, 23, 8, 24, 9, 25};  // 6 + 6
  j2.pattern = Pattern::kRecursiveHalvingVD;
  j2.msize = 1 << 20;
  j2.rounds = 6;  // a several-second burst, like the paper's long-lived J2
  j2.period = 15.0;
  j2.first_start = 3.0;

  const auto r = simulate_network(net, {j1, j2}, 60.0);
  const auto& e1 = r.per_job[0];
  ASSERT_GE(e1.size(), 10u);
  ASSERT_GE(r.per_job[1].size(), 2u);

  // Partition J1 executions: fully inside a J2 burst vs fully outside
  // (partial overlaps are dropped — they dilute both classes).
  std::vector<double> solo, contended;
  for (const auto& ex : e1) {
    bool fully_inside = false;
    bool any_overlap = false;
    for (const auto& ex2 : r.per_job[1]) {
      const double b2 = ex2.start, e2 = ex2.start + ex2.duration;
      if (ex.start < e2 && b2 < ex.start + ex.duration) any_overlap = true;
      if (ex.start >= b2 && ex.start + ex.duration <= e2) fully_inside = true;
    }
    if (fully_inside)
      contended.push_back(ex.duration);
    else if (!any_overlap)
      solo.push_back(ex.duration);
  }
  ASSERT_FALSE(solo.empty());
  ASSERT_FALSE(contended.empty());
  // Spikes: contended executions are noticeably slower.
  EXPECT_GT(mean(contended), mean(solo) * 1.3);
}

TEST(NetSimTest, ThreeLevelTreesRouteThroughGroupUplinks) {
  // 2 groups x 2 leaves x 2 nodes. A cross-group pair traverses 6 links;
  // with a same-group pair sharing only the leaf uplink section, rates
  // split where paths overlap.
  const Tree tree = make_three_level_tree(2, 2, 2);
  const FlowNetwork net(tree, LinkConfig{});
  // Cross-group exchange (node 0 <-> node 7) alone: full rate.
  const auto solo = simulate_network(net, {pair_job({0, 7}, kGigE)}, 5.0);
  ASSERT_FALSE(solo.per_job[0].empty());
  EXPECT_NEAR(solo.per_job[0][0].duration, 1.0, 1e-9);
  // Two cross-group pairs sharing the group uplinks: half rate each.
  const auto shared = simulate_network(
      net, {pair_job({0, 7}, kGigE), pair_job({1, 6}, kGigE)}, 5.0);
  EXPECT_NEAR(shared.per_job[0][0].duration, 2.0, 1e-9);
  EXPECT_NEAR(shared.per_job[1][0].duration, 2.0, 1e-9);
}

TEST(NetSimTest, FatterUplinksRemoveTheBottleneck) {
  // With uplink_multiplier 4, a leaf uplink carries 4 node-links' worth:
  // the two cross-switch flows of the previous test no longer contend.
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{.node_link_bw = kGigE,
                                         .uplink_multiplier = 4.0});
  const auto r = simulate_network(
      net, {pair_job({0, 4}, kGigE), pair_job({1, 5}, kGigE)}, 5.0);
  EXPECT_NEAR(r.per_job[0][0].duration, 1.0, 1e-9);
  EXPECT_NEAR(r.per_job[1][0].duration, 1.0, 1e-9);
}

TEST(NetSimTest, PerHopLatencyDelaysTransfers) {
  const Tree tree = make_figure2_tree();
  LinkConfig config;
  config.per_hop_latency = 0.1;
  const FlowNetwork net(tree, config);
  // Same-leaf pair: path = 2 links -> 0.2 s latency + 1 s transfer.
  const auto r = simulate_network(net, {pair_job({0, 1}, kGigE)}, 5.0);
  ASSERT_FALSE(r.per_job[0].empty());
  EXPECT_NEAR(r.per_job[0][0].duration, 1.2, 1e-9);
}

TEST(NetSimTest, LatencyScalesWithPathLength) {
  const Tree tree = make_figure2_tree();
  LinkConfig config;
  config.per_hop_latency = 0.1;
  const FlowNetwork net(tree, config);
  // Cross-leaf pair: path = 4 links -> 0.4 s latency + 1 s transfer.
  const auto r = simulate_network(net, {pair_job({0, 4}, kGigE)}, 5.0);
  ASSERT_FALSE(r.per_job[0].empty());
  EXPECT_NEAR(r.per_job[0][0].duration, 1.4, 1e-9);
}

TEST(NetSimTest, LatentFlowsConsumeNoBandwidth) {
  const Tree tree = make_figure2_tree();
  LinkConfig config;
  config.per_hop_latency = 0.5;
  const FlowNetwork net(tree, config);
  std::vector<Flow> flows;
  Flow latent;
  latent.links = net.path(0, 1);
  latent.remaining = 1e6;
  latent.latency = 0.5;
  Flow active;
  active.links = net.path(2, 1);  // shares node 1's access link
  active.remaining = 1e6;
  flows.push_back(latent);
  flows.push_back(active);
  net.compute_maxmin_rates(flows);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, kGigE);
}

TEST(NetSimTest, RejectsBadJobs) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  EXPECT_THROW(simulate_network(net, {pair_job({0}, kGigE)}, 1.0),
               InvariantError);
  EXPECT_THROW(simulate_network(net, {pair_job({0, 99}, kGigE)}, 1.0),
               InvariantError);
  EXPECT_THROW(simulate_network(net, {pair_job({0, 1}, kGigE)}, 0.0),
               InvariantError);
}

TEST(NetSimTest, NoJobsIsEmptyResult) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  const auto r = simulate_network(net, {}, 1.0);
  EXPECT_TRUE(r.per_job.empty());
}

}  // namespace
}  // namespace commsched
