#include "netsim/usage.hpp"

#include <gtest/gtest.h>

#include "netsim/sim.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

constexpr double kGigE = 125.0e6;

RepeatingJob simple_job(std::vector<NodeId> nodes, double msize) {
  RepeatingJob j;
  j.name = "j";
  j.nodes = std::move(nodes);
  j.pattern = Pattern::kRecursiveDoubling;
  j.msize = msize;
  j.rounds = 1;
  j.period = 1e9;  // run exactly once within any reasonable horizon
  return j;
}

TEST(LinkUsageTest, RecordAccumulatesBytesAndBusyTime) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  std::vector<Flow> flows(1);
  flows[0].links = net.path(0, 1);
  flows[0].remaining = 100.0;
  flows[0].rate = 10.0;
  usage.record(flows, 2.0);
  EXPECT_DOUBLE_EQ(usage.bytes(0), 20.0);
  EXPECT_DOUBLE_EQ(usage.bytes(1), 20.0);
  EXPECT_DOUBLE_EQ(usage.busy_time(0), 2.0);
  EXPECT_DOUBLE_EQ(usage.bytes(2), 0.0);
  EXPECT_DOUBLE_EQ(usage.busy_time(2), 0.0);
}

TEST(LinkUsageTest, LatentAndFinishedFlowsIgnored) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  std::vector<Flow> flows(2);
  flows[0].links = net.path(0, 1);
  flows[0].remaining = 100.0;
  flows[0].rate = 10.0;
  flows[0].latency = 0.5;  // still starting up
  flows[1].links = net.path(2, 3);
  flows[1].remaining = 0.0;  // done
  flows[1].rate = 10.0;
  usage.record(flows, 1.0);
  EXPECT_DOUBLE_EQ(usage.total_link_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(usage.busy_time(0), 0.0);
}

TEST(LinkUsageTest, SimulationConservesBytes) {
  // One RD exchange between two same-leaf nodes: msize bytes over each of
  // the two access links.
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  const double msize = kGigE;  // 1 second worth
  const auto r =
      simulate_network(net, {simple_job({0, 1}, msize)}, 10.0, &usage);
  ASSERT_EQ(r.per_job[0].size(), 1u);
  EXPECT_NEAR(usage.bytes(0), msize, 1.0);
  EXPECT_NEAR(usage.bytes(1), msize, 1.0);
  EXPECT_NEAR(usage.total_link_bytes(), 2 * msize, 1.0);
  EXPECT_NEAR(usage.busy_time(0), 1.0, 1e-6);
}

TEST(LinkUsageTest, CrossSwitchTrafficShowsOnUplinks) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  const auto r =
      simulate_network(net, {simple_job({0, 4}, kGigE)}, 10.0, &usage);
  ASSERT_FALSE(r.per_job[0].empty());
  const SwitchId s0 = *tree.switch_by_name("s0");
  const SwitchId s1 = *tree.switch_by_name("s1");
  EXPECT_NEAR(usage.bytes(8 + static_cast<int>(s0)), kGigE, 1.0);
  EXPECT_NEAR(usage.bytes(8 + static_cast<int>(s1)), kGigE, 1.0);
}

TEST(LinkUsageTest, BusyTimeNeverExceedsHorizon) {
  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  RepeatingJob j1 = simple_job({0, 16, 1, 17}, 1 << 20);
  j1.pattern = Pattern::kRecursiveHalvingVD;
  j1.period = 0.0;  // back to back
  const double horizon = 2.0;
  simulate_network(net, {j1}, horizon, &usage);
  for (int l = 0; l < usage.link_count(); ++l) {
    EXPECT_GE(usage.busy_time(l), 0.0);
    EXPECT_LE(usage.busy_time(l), horizon + 1e-9);
  }
}

TEST(LinkUsageTest, RejectsNegativeInterval) {
  const Tree tree = make_figure2_tree();
  const FlowNetwork net(tree, LinkConfig{});
  LinkUsage usage(net);
  std::vector<Flow> flows;
  EXPECT_THROW(usage.record(flows, -1.0), InvariantError);
}

}  // namespace
}  // namespace commsched
