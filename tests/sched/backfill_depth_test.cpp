// Backfill-depth and scheduling-pressure behaviours of the simulator that
// the main simulator_test does not cover: bf_max_job_test-style depth
// limits, simultaneous submissions, and queue-policy interaction with
// backfilling under sustained backlog.
#include <gtest/gtest.h>

#include "metrics/extended.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

JobRecord job(WorkloadJobId id, double submit, int nodes, double runtime,
              double walltime = 0.0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.runtime = runtime;
  j.walltime = walltime > 0.0 ? walltime : runtime;
  return j;
}

TEST(BackfillDepthTest, DepthLimitStopsScanningTheQueue) {
  // Machine 8 nodes. Head blocked until t=100. Two backfill candidates:
  // one deep in the queue. With depth 1 only the first candidate is
  // examined.
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0),   // running, full machine
             job(2, 1.0, 8, 100.0),   // blocked head
             job(3, 2.0, 9, 50.0),    // never fits better than head: filler
             job(4, 3.0, 2, 50.0)};   // backfillable, but at depth 3
  // job 3 cannot exist (9 > machine); replace with a large-but-valid one.
  log[2] = job(3, 2.0, 8, 50.0);

  SchedOptions shallow;
  shallow.backfill_depth = 1;
  const SimResult a = run_continuous(tree, log, shallow);
  SchedOptions deep;
  deep.backfill_depth = 10;
  const SimResult b = run_continuous(tree, log, deep);
  // With depth 10 the 2-node job backfills at t=3... but the machine is
  // full until t=100, so "backfill" here means starting as soon as job 1
  // ends without waiting behind jobs 2-3.
  EXPECT_LE(b.jobs[3].start_time, a.jobs[3].start_time);
}

TEST(BackfillDepthTest, SimultaneousSubmissionsKeepIdOrder) {
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 5.0, 4, 100.0), job(2, 5.0, 4, 100.0),
             job(3, 5.0, 4, 100.0)};
  const SimResult r = run_continuous(tree, log, SchedOptions{});
  // Two fit immediately (8 nodes), the third queues.
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 5.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 5.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 105.0);
}

TEST(BackfillDepthTest, ZeroWaitWhenMachineIsEmptyEnough) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log;
  for (int i = 0; i < 8; ++i) log.push_back(job(i + 1, i * 10.0, 4, 50.0));
  const SimResult r = run_continuous(tree, log, SchedOptions{});
  for (const auto& jr : r.jobs) EXPECT_DOUBLE_EQ(jr.wait_time(), 0.0);
}

TEST(QueuePolicyUnderLoadTest, SjfReducesMeanSlowdownOnBacklog) {
  // Classic queueing result: under backlog, shortest-job-first cuts the
  // mean bounded slowdown relative to FIFO. Use a backlogged synthetic log.
  const Tree tree = make_two_level_tree(4, 8);  // 32 nodes
  LogProfile p = theta_profile();
  p.machine_nodes = 32;
  p.min_exp = 1;
  p.max_exp = 4;
  p.target_load = 1.4;
  JobLog log = generate_log(p, 300, 2024);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.5, 0.5), 2025);

  SchedOptions fifo;
  const DistSummary fifo_slow =
      slowdown_summary(run_continuous(tree, log, fifo));
  SchedOptions sjf;
  sjf.queue_policy = QueuePolicy::kShortestJobFirst;
  const DistSummary sjf_slow =
      slowdown_summary(run_continuous(tree, log, sjf));
  EXPECT_LT(sjf_slow.mean, fifo_slow.mean);
}

TEST(QueuePolicyUnderLoadTest, PoliciesNeverLoseJobs) {
  const Tree tree = make_two_level_tree(4, 8);
  LogProfile p = theta_profile();
  p.machine_nodes = 32;
  p.min_exp = 0;
  p.max_exp = 5;
  p.target_load = 1.2;
  JobLog log = generate_log(p, 200, 7);
  apply_mix(log, uniform_mix(Pattern::kBinomial, 0.9, 0.5), 8);
  for (const QueuePolicy policy :
       {QueuePolicy::kFifo, QueuePolicy::kShortestJobFirst,
        QueuePolicy::kSmallestJobFirst}) {
    SchedOptions opts;
    opts.queue_policy = policy;
    const SimResult r = run_continuous(tree, log, opts);
    ASSERT_EQ(r.jobs.size(), log.size());
    for (const auto& jr : r.jobs) {
      EXPECT_GE(jr.start_time, jr.submit_time);
      EXPECT_GT(jr.actual_runtime, 0.0);
    }
  }
}

TEST(BackfillDepthTest, WalltimeOverestimatesWeakenBackfill) {
  // When everyone requests the queue maximum, EASY's reservations become
  // pessimistic and fewer jobs jump ahead — waits should not improve.
  const Tree tree = make_two_level_tree(4, 8);
  LogProfile accurate = theta_profile();
  accurate.machine_nodes = 32;
  accurate.min_exp = 1;
  accurate.max_exp = 4;
  accurate.target_load = 1.3;
  LogProfile sloppy = accurate;
  sloppy.default_walltime_fraction = 1.0;
  sloppy.default_walltime = 24.0 * 3600.0;

  const JobLog log_a = generate_log(accurate, 250, 99);
  const JobLog log_b = generate_log(sloppy, 250, 99);
  JobLog a = log_a, b = log_b;
  apply_mix(a, uniform_mix(Pattern::kRecursiveDoubling, 0.5, 0.5), 100);
  apply_mix(b, uniform_mix(Pattern::kRecursiveDoubling, 0.5, 0.5), 100);
  const RunSummary sa = summarize(run_continuous(tree, a, SchedOptions{}));
  const RunSummary sb = summarize(run_continuous(tree, b, SchedOptions{}));
  EXPECT_GE(sb.total_wait_hours, sa.total_wait_hours * 0.95);
}

}  // namespace
}  // namespace commsched
