// Behavioural lockdown of dynamic interference (DESIGN.md "Dynamic
// interference"): co-located communication load inflates running jobs'
// remaining time, releases deflate it, the walltime cap still kills
// overruns, the static Eq. 7 results are recovered bit for bit when the
// dynamics are inert, and QueuePolicy::kColocation defers antagonists while
// letting compatible jobs pack. Hand-sized logs keep every expected number
// computable by hand (kLoadUnitScale arithmetic is exact in doubles).
#include <gtest/gtest.h>

#include <vector>

#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/job.hpp"

namespace commsched {
namespace {

JobRecord comm_job(int id, double submit, int nodes, double runtime,
                   double comm_fraction, double walltime = 0.0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.runtime = runtime;
  j.walltime = walltime > 0.0 ? walltime : runtime * 10.0;
  j.comm_intensive = true;
  j.comm_fraction = comm_fraction;
  j.pattern = Pattern::kRecursiveDoubling;
  return j;
}

JobRecord compute_job(int id, double submit, int nodes, double runtime) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.runtime = runtime;
  j.walltime = runtime * 10.0;
  j.comm_intensive = false;
  return j;
}

SchedOptions dynamic_options(double alpha = 1.0) {
  SchedOptions options;
  options.degradation.enabled = true;
  options.degradation.alpha = alpha;
  options.audit = AuditLevel::kFull;  // every event cross-checked
  return options;
}

// Two half-communication jobs sharing a leaf degrade each other by exactly
// factor 1 + alpha * 0.5 * (2 * 512 / (1024 * 4)) = 1.125: both run
// 100 * 1.125 = 112.5 (all values exact in binary floating point).
TEST(DynamicInterferenceTest, CoLocatedJobsInflateEachOther) {
  const Tree tree = make_two_level_tree(2, 4);
  const JobLog log{comm_job(1, 0.0, 2, 100.0, 0.5),
                   comm_job(2, 0.0, 2, 100.0, 0.5)};
  const SimResult res = run_continuous(tree, log, dynamic_options());
  // The default allocator packs both onto leaf 0: nodes {0,1} and {2,3}.
  EXPECT_EQ(res.jobs[0].start_time, 0.0);
  EXPECT_EQ(res.jobs[1].start_time, 0.0);
  EXPECT_EQ(res.jobs[0].end_time, 112.5);
  EXPECT_EQ(res.jobs[1].end_time, 112.5);
  EXPECT_EQ(res.jobs[0].actual_runtime, 112.5);
  EXPECT_EQ(res.makespan, 112.5);
}

// A short co-runner inflates the long job only while it is present: after
// the short job ends at t = 11.25, the long job's remaining time deflates
// back to factor 1 and it finishes at ~101.25 — later than the isolated
// 100, earlier than the 112.5 a frozen penalty would give.
TEST(DynamicInterferenceTest, ReleaseDeflatesRemainingTime) {
  const Tree tree = make_two_level_tree(2, 4);
  const JobLog log{comm_job(1, 0.0, 2, 100.0, 0.5),
                   comm_job(2, 0.0, 2, 10.0, 0.5)};
  const SimResult res = run_continuous(tree, log, dynamic_options());
  EXPECT_EQ(res.jobs[1].end_time, 11.25);
  EXPECT_NEAR(res.jobs[0].end_time, 101.25, 1e-9);
  EXPECT_GT(res.jobs[0].end_time, 100.0);
  EXPECT_LT(res.jobs[0].end_time, 112.5);
}

// Placing the antagonists on different leaves (explicitly, via a log whose
// second job only fits the other leaf) produces zero external load and the
// exact static runtimes.
TEST(DynamicInterferenceTest, SeparateLeavesDoNotInteract) {
  const Tree tree = make_two_level_tree(2, 4);
  const JobLog log{comm_job(1, 0.0, 4, 100.0, 0.5),
                   comm_job(2, 0.0, 4, 100.0, 0.5)};
  const SimResult res = run_continuous(tree, log, dynamic_options());
  EXPECT_EQ(res.jobs[0].end_time, 100.0);
  EXPECT_EQ(res.jobs[1].end_time, 100.0);
}

// alpha = 0 arms the whole re-evaluation machinery but neutralizes the
// model: every field of every job must equal the static run bit for bit.
TEST(DynamicInterferenceTest, AlphaZeroRecoversStaticResultsExactly) {
  const Tree tree = make_two_level_tree(2, 4);
  JobLog log;
  for (int i = 0; i < 12; ++i)
    log.push_back(comm_job(i + 1, i * 3.0, 1 + (i % 4), 40.0 + i,
                           0.2 + 0.05 * i));
  for (const auto allocator :
       {AllocatorKind::kDefault, AllocatorKind::kBalanced}) {
    SchedOptions stat;
    stat.allocator = allocator;
    SchedOptions dyn = dynamic_options(/*alpha=*/0.0);
    dyn.allocator = allocator;
    const SimResult a = run_continuous(tree, log, stat);
    const SimResult b = run_continuous(tree, log, dyn);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.makespan, b.makespan);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].start_time, b.jobs[i].start_time);
      EXPECT_EQ(a.jobs[i].end_time, b.jobs[i].end_time);
      EXPECT_EQ(a.jobs[i].actual_runtime, b.jobs[i].actual_runtime);
      EXPECT_EQ(a.jobs[i].hit_walltime, b.jobs[i].hit_walltime);
    }
  }
}

// Inflation beyond the requested walltime gets the job killed at exactly
// start + walltime when enforcement is on, and the kill is flagged.
TEST(DynamicInterferenceTest, WalltimeCapsInflation) {
  const Tree tree = make_two_level_tree(2, 4);
  const JobLog log{comm_job(1, 0.0, 2, 100.0, 0.5, /*walltime=*/105.0),
                   comm_job(2, 0.0, 2, 100.0, 0.5, /*walltime=*/1000.0)};
  SchedOptions options = dynamic_options();
  options.enforce_walltime = true;
  const SimResult res = run_continuous(tree, log, options);
  // Both inflate to 112.5; job 1 dies at its 105 s walltime.
  EXPECT_TRUE(res.jobs[0].hit_walltime);
  EXPECT_EQ(res.jobs[0].end_time, 105.0);
  EXPECT_EQ(res.jobs[0].actual_runtime, 105.0);
  // Job 2 deflates once job 1 is gone: it ends strictly before 112.5 but
  // after its isolated 100 s.
  EXPECT_FALSE(res.jobs[1].hit_walltime);
  EXPECT_GT(res.jobs[1].end_time, 100.0);
  EXPECT_LT(res.jobs[1].end_time, 112.5);
}

// QueuePolicy::kColocation defers a communication-heavy job while the load
// on its prospective leaves exceeds coloc_max_external, and starts it the
// moment a completion clears the antagonist load.
TEST(DynamicInterferenceTest, ColocationPolicyDefersAntagonists) {
  const Tree tree = make_two_level_tree(2, 4);
  // A fills 3 nodes of leaf 0; B takes node 3 (leaf 0) + 2 nodes of leaf 1;
  // C would land on leaf 1 next to B's heavy load.
  const JobLog log{comm_job(1, 0.0, 3, 100.0, 0.8),
                   comm_job(2, 0.0, 3, 100.0, 0.8),
                   comm_job(3, 0.0, 2, 50.0, 0.8)};

  SchedOptions fifo;
  const SimResult eager = run_continuous(tree, log, fifo);
  EXPECT_EQ(eager.jobs[2].start_time, 0.0);

  SchedOptions coloc;
  coloc.queue_policy = QueuePolicy::kColocation;
  coloc.audit = AuditLevel::kFull;
  const SimResult gated = run_continuous(tree, log, coloc);
  // Equal loads keep FIFO order: A and B still start immediately (B's
  // prospective external load, one node on A's leaf out of three, is 0.2 —
  // under the 0.25 default threshold).
  EXPECT_EQ(gated.jobs[0].start_time, 0.0);
  EXPECT_EQ(gated.jobs[1].start_time, 0.0);
  // C's leaf-1 neighbourhood carries 2 * 819 / 4096 ≈ 0.4 > 0.25: deferred
  // until A and B complete at t = 100.
  EXPECT_EQ(gated.jobs[2].start_time, 100.0);
}

// kColocation ranks light communication loads first (they pack with
// anything), overriding submit order but keeping FIFO among equals.
TEST(DynamicInterferenceTest, ColocationPolicyRanksLightLoadsFirst) {
  const Tree tree = make_two_level_tree(2, 4);
  JobLog log;
  JobRecord filler = compute_job(1, 0.0, 8, 10.0);
  log.push_back(filler);
  log.push_back(comm_job(2, 1.0, 2, 5.0, 0.9));   // heavy, submitted first
  log.push_back(compute_job(3, 2.0, 8, 3.0));     // light, submitted later
  SchedOptions coloc;
  coloc.queue_policy = QueuePolicy::kColocation;
  const SimResult res = run_continuous(tree, log, coloc);
  // At t = 10 the machine drains; the light job jumps the heavy one.
  EXPECT_EQ(res.jobs[2].start_time, 10.0);
  EXPECT_EQ(res.jobs[1].start_time, 13.0);

  SchedOptions fifo;
  const SimResult base = run_continuous(tree, log, fifo);
  EXPECT_EQ(base.jobs[1].start_time, 10.0);
}

// COMMSCHED_RUNTIME_CLAMP caps the degradation factor too: the model's
// upper clamp is RuntimeModelOptions::max_ratio after the env override.
TEST(DynamicInterferenceTest, RuntimeClampBoundsDegradation) {
  const Tree tree = make_two_level_tree(2, 4);
  const JobLog log{comm_job(1, 0.0, 2, 100.0, 0.5),
                   comm_job(2, 0.0, 2, 100.0, 0.5)};
  SchedOptions options = dynamic_options(/*alpha=*/1e6);
  options.runtime_options.max_ratio = 2.0;
  const SimResult res = run_continuous(tree, log, options);
  // Factor saturates at max_ratio: 100 * 2 = 200.
  EXPECT_EQ(res.jobs[0].end_time, 200.0);
  EXPECT_EQ(res.jobs[1].end_time, 200.0);
}

}  // namespace
}  // namespace commsched
