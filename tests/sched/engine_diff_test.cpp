// Differential lockdown of the two event-loop engines (DESIGN.md
// "Million-job event loop"): SimEngine::kFast must reproduce
// SimEngine::kReference bit for bit — every JobResult field, the makespan
// and the cache counters — across fuzzed logs, allocators, queue policies,
// backfill settings and walltime enforcement. Any divergence means the
// indexed fast path changed a scheduling decision, which is a bug by
// definition regardless of which answer looks better.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/allocator_factory.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

void expect_identical(const SimResult& fast, const SimResult& ref,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(fast.jobs.size(), ref.jobs.size());
  EXPECT_EQ(fast.allocator_name, ref.allocator_name);
  EXPECT_EQ(fast.makespan, ref.makespan);  // exact, not near
  for (std::size_t i = 0; i < ref.jobs.size(); ++i) {
    const JobResult& f = fast.jobs[i];
    const JobResult& r = ref.jobs[i];
    SCOPED_TRACE("job index " + std::to_string(i));
    EXPECT_EQ(f.id, r.id);
    EXPECT_EQ(f.num_nodes, r.num_nodes);
    EXPECT_EQ(f.comm_intensive, r.comm_intensive);
    EXPECT_EQ(f.pattern, r.pattern);
    EXPECT_EQ(f.submit_time, r.submit_time);
    EXPECT_EQ(f.start_time, r.start_time);
    EXPECT_EQ(f.end_time, r.end_time);
    EXPECT_EQ(f.original_runtime, r.original_runtime);
    EXPECT_EQ(f.actual_runtime, r.actual_runtime);
    EXPECT_EQ(f.cost, r.cost);
    EXPECT_EQ(f.cost_default, r.cost_default);
    EXPECT_EQ(f.io_cost, r.io_cost);
    EXPECT_EQ(f.io_cost_default, r.io_cost_default);
    EXPECT_EQ(f.hit_walltime, r.hit_walltime);
  }
  // Same decisions => same pricing calls => same cache traffic.
  EXPECT_EQ(fast.cache_stats.schedule_hits, ref.cache_stats.schedule_hits);
  EXPECT_EQ(fast.cache_stats.schedule_misses,
            ref.cache_stats.schedule_misses);
  EXPECT_EQ(fast.cache_stats.profile_hits, ref.cache_stats.profile_hits);
  EXPECT_EQ(fast.cache_stats.profile_misses,
            ref.cache_stats.profile_misses);
}

void run_both_and_compare(const Tree& tree, const JobLog& log,
                          SchedOptions options, const std::string& label) {
  options.engine = SimEngine::kFast;
  const SimResult fast = run_continuous(tree, log, options);
  options.engine = SimEngine::kReference;
  const SimResult ref = run_continuous(tree, log, options);
  expect_identical(fast, ref, label);
}

JobLog fuzz_log(const Tree& tree, int n_jobs, std::uint64_t seed,
                double comm_percent = 0.9) {
  // A backlogged profile shrunk onto the test tree keeps the queue deep, so
  // backfill and reservation logic is exercised constantly.
  const LogProfile profile =
      scale_profile(theta_profile(), tree.node_count());
  JobLog log = generate_log(profile, n_jobs, seed);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, comm_percent),
            seed ^ 0x9E3779B97F4A7C15ull);
  return log;
}

TEST(EngineDiffTest, FuzzedLogsAcrossAllocators) {
  const Tree tree = make_two_level_tree(4, 8);
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const JobLog log = fuzz_log(tree, 160, seed);
    for (const AllocatorKind kind : kAllAllocatorKinds) {
      SchedOptions options;
      options.allocator = kind;
      run_both_and_compare(tree, log, options,
                           std::string("seed ") + std::to_string(seed) +
                               " allocator " + allocator_kind_name(kind));
    }
  }
}

TEST(EngineDiffTest, QueuePoliciesTimesBackfill) {
  const Tree tree = make_figure2_tree();
  const JobLog log = fuzz_log(tree, 120, 7);
  for (const QueuePolicy policy :
       {QueuePolicy::kFifo, QueuePolicy::kShortestJobFirst,
        QueuePolicy::kSmallestJobFirst}) {
    for (const bool backfill : {false, true}) {
      for (const int depth : {1, 3, 200}) {
        if (!backfill && depth != 200) continue;  // depth is a no-op then
        SchedOptions options;
        options.queue_policy = policy;
        options.easy_backfill = backfill;
        options.backfill_depth = depth;
        run_both_and_compare(
            tree, log, options,
            "policy " + std::to_string(static_cast<int>(policy)) +
                " backfill " + std::to_string(backfill) + " depth " +
                std::to_string(depth));
      }
    }
  }
}

TEST(EngineDiffTest, EnforcedWalltimeAndComputeOnlyLogs) {
  const Tree tree = make_two_level_tree(4, 8);
  for (const double comm_percent : {0.0, 0.6}) {
    const JobLog log = fuzz_log(tree, 140, 99, comm_percent);
    SchedOptions options;
    options.allocator = AllocatorKind::kBalanced;
    options.enforce_walltime = true;
    run_both_and_compare(tree, log, options,
                         "enforce_walltime comm_percent " +
                             std::to_string(comm_percent));
  }
}

TEST(EngineDiffTest, ExclusiveAndIoAwareAllocators) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log = generate_log(scale_profile(theta_profile(), tree.node_count()),
                            120, 5);
  MixSpec mix = uniform_mix(Pattern::kRecursiveDoubling, 0.7);
  mix.io_percent = 0.4;
  mix.io_fraction = 0.3;
  apply_mix(log, mix, 17);
  for (const AllocatorKind kind :
       {AllocatorKind::kExclusive, AllocatorKind::kIoAware}) {
    SchedOptions options;
    options.allocator = kind;
    run_both_and_compare(tree, log, options,
                         std::string("allocator ") +
                             allocator_kind_name(kind));
  }
}

// The search-based allocator (DESIGN.md "Delta-cost evaluation & search
// allocators") under both engines: the anneal runs per select_into and must
// be a pure function of (options, state, request), so the fast engine's
// reordered bookkeeping cannot perturb a single placement. Exercised across
// proposal policies and with the in-anneal delta-vs-full verification on.
TEST(EngineDiffTest, SimulatedAnnealingAllocator) {
  const Tree tree = make_two_level_tree(4, 8);
  for (const std::uint64_t seed : {13ull, 29ull}) {
    const JobLog log = fuzz_log(tree, 140, seed);
    for (const SaProposalKind proposal :
         {SaProposalKind::kUniform, SaProposalKind::kLocality}) {
      SchedOptions options;
      options.allocator = AllocatorKind::kSa;
      options.sa.budget = 300;  // keep the diff test fast; plenty of accepts
      options.sa.proposal = proposal;
      run_both_and_compare(tree, log, options,
                           "seed " + std::to_string(seed) + " proposal " +
                               sa_proposal_kind_name(proposal));
    }
  }
  // Full audit layers the auditor's from-scratch claimed-cost cross-check
  // and verify_stride=1 in-anneal recomputes on top of the engine diff.
  const JobLog log = fuzz_log(tree, 60, 5);
  SchedOptions options;
  options.allocator = AllocatorKind::kSa;
  options.sa.budget = 200;
  options.audit = AuditLevel::kFull;
  run_both_and_compare(tree, log, options, "sa under full audit");
}

// Dynamic interference axes (DESIGN.md "Dynamic interference"): runtime
// re-evaluation on/off × colocation policy × walltime enforcement. The fast
// engine reschedules ends incrementally through the per-leaf running-job
// index and the completion-heap fix-ups; the reference engine rescales by
// scanning every running job. Bit-identical results pin that the two
// strategies rescale exactly the same jobs to exactly the same times.
TEST(EngineDiffTest, DynamicInterferenceTimesColocation) {
  const Tree tree = make_two_level_tree(4, 8);
  for (const std::uint64_t seed : {3ull, 44ull}) {
    const JobLog log = fuzz_log(tree, 140, seed);
    for (const bool dynamic : {false, true}) {
      for (const QueuePolicy policy :
           {QueuePolicy::kFifo, QueuePolicy::kColocation}) {
        for (const bool walltime : {false, true}) {
          SchedOptions options;
          options.allocator = AllocatorKind::kBalanced;
          options.degradation.enabled = dynamic;
          options.degradation.alpha = 2.0;  // bite hard: many re-evaluations
          options.queue_policy = policy;
          options.enforce_walltime = walltime;
          run_both_and_compare(
              tree, log, options,
              "seed " + std::to_string(seed) + " dynamic " +
                  std::to_string(dynamic) + " policy " +
                  std::to_string(static_cast<int>(policy)) + " walltime " +
                  std::to_string(walltime));
        }
      }
    }
  }
}

// The same dynamic axes under full auditing: every event additionally runs
// the shadow load ledger, the end-event/occupancy consistency check and the
// from-scratch ClusterState::validate(), so a re-evaluation that desyncs
// the heap from the bookkeeping throws instead of silently diverging.
TEST(EngineDiffTest, DynamicInterferenceUnderFullAudit) {
  const Tree tree = make_figure2_tree();
  const JobLog log = fuzz_log(tree, 80, 21);
  SchedOptions options;
  options.allocator = AllocatorKind::kBalanced;
  options.degradation.enabled = true;
  options.degradation.alpha = 2.0;
  options.queue_policy = QueuePolicy::kColocation;
  options.audit = AuditLevel::kFull;
  run_both_and_compare(tree, log, options, "dynamic colocation, full audit");
}

// Degenerate shapes the indexed structures must not trip on: empty log,
// single job, all jobs identical (maximal tie-breaking pressure), and every
// job full-machine width (running set of size one, no backfill ever fits).
TEST(EngineDiffTest, DegenerateShapes) {
  const Tree tree = make_figure2_tree();
  run_both_and_compare(tree, JobLog{}, SchedOptions{}, "empty log");

  JobRecord one;
  one.id = 1;
  one.submit_time = 10.0;
  one.num_nodes = tree.node_count();
  one.runtime = 60.0;
  one.walltime = 90.0;
  run_both_and_compare(tree, JobLog{one}, SchedOptions{}, "single job");

  JobLog ties;
  for (int i = 0; i < 40; ++i) {
    JobRecord j;
    j.id = i + 1;
    j.submit_time = 0.0;
    j.num_nodes = 2;
    j.runtime = 100.0;
    j.walltime = 100.0;
    ties.push_back(j);
  }
  for (const QueuePolicy policy :
       {QueuePolicy::kFifo, QueuePolicy::kShortestJobFirst,
        QueuePolicy::kSmallestJobFirst}) {
    SchedOptions options;
    options.queue_policy = policy;
    run_both_and_compare(tree, ties, options,
                         "identical jobs, policy " +
                             std::to_string(static_cast<int>(policy)));
  }

  JobLog wide;
  for (int i = 0; i < 20; ++i) {
    JobRecord j;
    j.id = i + 1;
    j.submit_time = static_cast<double>(i);
    j.num_nodes = tree.node_count();
    j.runtime = 50.0 + i;
    j.walltime = 60.0 + i;
    wide.push_back(j);
  }
  run_both_and_compare(tree, wide, SchedOptions{}, "full-machine jobs");
}

}  // namespace
}  // namespace commsched
