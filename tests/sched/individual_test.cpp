#include "sched/individual.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

JobLog make_probes(int count, int nodes, bool comm, Pattern pattern) {
  JobLog log;
  for (int i = 0; i < count; ++i) {
    JobRecord j;
    j.id = i + 1;
    j.num_nodes = nodes;
    j.runtime = 1000.0;
    j.walltime = 1500.0;
    j.comm_intensive = comm;
    j.comm_fraction = comm ? 0.6 : 0.0;
    j.pattern = pattern;
    log.push_back(j);
  }
  return log;
}

TEST(IndividualRunTest, ReportsEveryFittingProbe) {
  const Tree tree = make_two_level_tree(4, 16);
  const JobLog probes = make_probes(10, 8, true, Pattern::kRecursiveDoubling);
  const auto outcomes = run_individual(tree, probes, IndividualOptions{});
  EXPECT_EQ(outcomes.size(), 10u);
}

TEST(IndividualRunTest, SkipsProbesThatCannotFit) {
  const Tree tree = make_two_level_tree(2, 8);  // 16 nodes
  IndividualOptions opts;
  opts.occupancy = 0.6;  // ~9 nodes busy
  const JobLog probes = make_probes(3, 16, true, Pattern::kRecursiveDoubling);
  const auto outcomes = run_individual(tree, probes, opts);
  EXPECT_TRUE(outcomes.empty());
}

TEST(IndividualRunTest, DefaultImprovementIsZeroByConstruction) {
  const Tree tree = make_two_level_tree(4, 16);
  const JobLog probes = make_probes(5, 8, true, Pattern::kBinomial);
  const auto outcomes = run_individual(tree, probes, IndividualOptions{});
  for (const auto& o : outcomes) {
    EXPECT_DOUBLE_EQ(o.improvement_percent(AllocatorKind::kDefault), 0.0);
    EXPECT_DOUBLE_EQ(o.exec_time[0], 1000.0);
  }
}

TEST(IndividualRunTest, AdaptiveCostNeverAboveBothCandidates) {
  const Tree tree = make_two_level_tree(6, 16);
  JobLog probes = make_probes(20, 16, true, Pattern::kRecursiveHalvingVD);
  IndividualOptions opts;
  opts.occupancy = 0.55;
  const auto outcomes = run_individual(tree, probes, opts);
  ASSERT_FALSE(outcomes.empty());
  for (const auto& o : outcomes) {
    const double g = o.cost[static_cast<std::size_t>(AllocatorKind::kGreedy)];
    const double b = o.cost[static_cast<std::size_t>(AllocatorKind::kBalanced)];
    const double a = o.cost[static_cast<std::size_t>(AllocatorKind::kAdaptive)];
    EXPECT_LE(a, std::min(g, b) + 1e-9);
  }
}

TEST(IndividualRunTest, ComputeProbesKeepTheirRuntime) {
  const Tree tree = make_two_level_tree(4, 16);
  const JobLog probes = make_probes(5, 8, false, Pattern::kRecursiveDoubling);
  const auto outcomes = run_individual(tree, probes, IndividualOptions{});
  for (const auto& o : outcomes)
    for (const double t : o.exec_time) EXPECT_DOUBLE_EQ(t, 1000.0);
}

TEST(IndividualRunTest, ExecTimeFollowsCostRatio) {
  const Tree tree = make_two_level_tree(6, 16);
  JobLog probes = make_probes(10, 32, true, Pattern::kRecursiveDoubling);
  IndividualOptions opts;
  opts.occupancy = 0.5;
  const auto outcomes = run_individual(tree, probes, opts);
  for (const auto& o : outcomes) {
    for (const AllocatorKind kind : kAllAllocatorKinds) {
      const auto i = static_cast<std::size_t>(kind);
      if (o.cost[0] == 0.0) continue;
      const double ratio = std::clamp(o.cost[i] / o.cost[0], 0.05, 20.0);
      EXPECT_NEAR(o.exec_time[i], 400.0 + 600.0 * ratio, 1e-6);
    }
  }
}

TEST(IndividualRunTest, DeterministicForFixedSeed) {
  const Tree tree = make_two_level_tree(4, 16);
  const JobLog probes = make_probes(8, 16, true, Pattern::kRecursiveHalvingVD);
  IndividualOptions opts;
  opts.seed = 77;
  const auto a = run_individual(tree, probes, opts);
  const auto b = run_individual(tree, probes, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t k = 0; k < kNumAllocatorKinds; ++k)
      EXPECT_DOUBLE_EQ(a[i].cost[k], b[i].cost[k]);
}

TEST(IndividualRunTest, RejectsFullOccupancy) {
  const Tree tree = make_two_level_tree(2, 8);
  IndividualOptions opts;
  opts.occupancy = 1.0;
  EXPECT_THROW(run_individual(tree, {}, opts), InvariantError);
}

TEST(IndividualRunTest, PaperStyleWorkload) {
  // 200 random probes from a Theta-like log (§6.3), on the Theta topology.
  const Tree tree = make_theta();
  JobLog log = generate_log(theta_profile(), 200, 31);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.5), 32);
  IndividualOptions opts;
  opts.occupancy = 0.5;
  const auto outcomes = run_individual(tree, log, opts);
  ASSERT_GT(outcomes.size(), 150u);
  // Balanced/adaptive must not lose to default on average (Table 4 shape).
  double bal = 0.0, ada = 0.0;
  int comm_count = 0;
  for (const auto& o : outcomes) {
    if (!o.comm_intensive) continue;
    ++comm_count;
    bal += o.improvement_percent(AllocatorKind::kBalanced);
    ada += o.improvement_percent(AllocatorKind::kAdaptive);
  }
  ASSERT_GT(comm_count, 0);
  EXPECT_GE(bal / comm_count, 0.0);
  EXPECT_GE(ada / comm_count, 0.0);
}

}  // namespace
}  // namespace commsched
