// End-to-end behaviour of the §7 I/O extension inside the simulator:
// pricing, runtime impact, and the io_aware policy under load.
#include <gtest/gtest.h>

#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

JobLog mixed_log(int n_jobs, std::uint64_t seed) {
  LogProfile p = theta_profile();
  p.machine_nodes = 4 * 366;
  JobLog log = filter_power_of_two(generate_log(p, n_jobs, seed));
  MixSpec spec = uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.5);
  spec.io_percent = 0.5;
  spec.io_fraction = 0.3;
  apply_mix(log, spec, seed + 1);
  return log;
}

Tree small_theta() { return make_two_level_tree(4, 366, "theta", "tsw"); }

TEST(IoIntegrationTest, IoCostsRecordedForIoJobsOnly) {
  const Tree tree = small_theta();
  const JobLog log = mixed_log(120, 3);
  SchedOptions opts;
  opts.allocator = AllocatorKind::kIoAware;
  const SimResult r = run_continuous(tree, log, opts);
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].io_intensive) {
      EXPECT_GT(r.jobs[i].io_cost, 0.0);
      EXPECT_GT(r.jobs[i].io_cost_default, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(r.jobs[i].io_cost, 0.0);
    }
  }
}

TEST(IoIntegrationTest, DefaultPolicyUnaffectedByIoFlags) {
  const Tree tree = small_theta();
  const JobLog log = mixed_log(120, 5);
  SchedOptions opts;  // default allocator
  const SimResult r = run_continuous(tree, log, opts);
  for (const auto& j : r.jobs)
    EXPECT_DOUBLE_EQ(j.actual_runtime, j.original_runtime);
}

TEST(IoIntegrationTest, MixExactIoCount) {
  const JobLog log = mixed_log(200, 7);
  std::size_t io_jobs = 0;
  for (const auto& j : log) {
    if (j.io_intensive) {
      ++io_jobs;
      EXPECT_DOUBLE_EQ(j.io_fraction, 0.3);
      EXPECT_LE(j.comm_fraction + j.io_fraction, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(j.io_fraction, 0.0);
    }
  }
  EXPECT_EQ(io_jobs, log.size() / 2);
}

TEST(IoIntegrationTest, IoAwareNotWorseThanAdaptiveOnMixedLoad) {
  const Tree tree = small_theta();
  const JobLog log = mixed_log(200, 11);
  SchedOptions a;
  a.allocator = AllocatorKind::kAdaptive;
  SchedOptions b;
  b.allocator = AllocatorKind::kIoAware;
  const RunSummary adaptive = summarize(run_continuous(tree, log, a));
  const RunSummary io_aware = summarize(run_continuous(tree, log, b));
  EXPECT_LE(io_aware.total_exec_hours, adaptive.total_exec_hours * 1.02);
}

TEST(IoIntegrationTest, MixRejectsOverfullFractions) {
  JobLog log = mixed_log(10, 13);
  MixSpec bad = uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.8);
  bad.io_percent = 0.5;
  bad.io_fraction = 0.3;  // 0.8 + 0.3 > 1
  EXPECT_THROW(apply_mix(log, bad, 1), InvariantError);
}

TEST(IoIntegrationTest, SimulatorRejectsOverfullJobFractions) {
  const Tree tree = make_figure2_tree();
  JobLog log(1);
  log[0].id = 1;
  log[0].num_nodes = 2;
  log[0].runtime = 100.0;
  log[0].walltime = 100.0;
  log[0].comm_intensive = true;
  log[0].comm_fraction = 0.8;
  log[0].io_intensive = true;
  log[0].io_fraction = 0.4;
  EXPECT_THROW(run_continuous(tree, log, SchedOptions{}), InvariantError);
}

}  // namespace
}  // namespace commsched
