// Scheduler substrate extensions: queue policies (SLURM priority plugins),
// walltime enforcement, and the exclusive (interference-free) policy inside
// the event loop.
#include <gtest/gtest.h>

#include "sched/simulator.hpp"
#include "topology/builders.hpp"

namespace commsched {
namespace {

JobRecord job(WorkloadJobId id, double submit, int nodes, double runtime,
              double walltime = 0.0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.runtime = runtime;
  j.walltime = walltime > 0.0 ? walltime : runtime;
  return j;
}

TEST(QueuePolicyTest, ShortestJobFirstReordersBlockedQueue) {
  // Machine full until t=100; three waiting jobs with distinct walltimes.
  // SJF must start them shortest-first regardless of submit order.
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0), job(2, 1.0, 8, 300.0),
             job(3, 2.0, 8, 50.0), job(4, 3.0, 8, 200.0)};
  SchedOptions opts;
  opts.queue_policy = QueuePolicy::kShortestJobFirst;
  const SimResult r = run_continuous(tree, log, opts);
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 100.0);  // 50 s job first
  EXPECT_DOUBLE_EQ(r.jobs[3].start_time, 150.0);  // then 200 s
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 350.0);  // 300 s job last
}

TEST(QueuePolicyTest, SmallestJobFirstReordersByNodeCount) {
  // 8-node machine full until t=100; the 2-node job jumps the 6-node one
  // and both fit together once the machine frees up.
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0), job(2, 1.0, 6, 100.0),
             job(3, 2.0, 2, 100.0)};
  SchedOptions opts;
  opts.queue_policy = QueuePolicy::kSmallestJobFirst;
  opts.easy_backfill = false;
  const SimResult r = run_continuous(tree, log, opts);
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
}

TEST(QueuePolicyTest, FifoTiesPreservedUnderSort) {
  // Equal keys stay in submit order (stable sort).
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0), job(2, 1.0, 4, 100.0),
             job(3, 2.0, 4, 100.0)};
  SchedOptions opts;
  opts.queue_policy = QueuePolicy::kShortestJobFirst;
  const SimResult r = run_continuous(tree, log, opts);
  EXPECT_LE(r.jobs[1].start_time, r.jobs[2].start_time);
}

TEST(WalltimeTest, EnforcementTruncatesOverruns) {
  // Pin the Eq. 7 ratio at 3 via the clamp so the fully-communication job
  // deterministically overruns its walltime (T' = 300 s > 120 s limit).
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 4, 100.0, 120.0)};
  log[0].comm_intensive = true;
  log[0].comm_fraction = 1.0;
  SchedOptions opts;
  opts.allocator = AllocatorKind::kBalanced;
  opts.runtime_options.min_ratio = 3.0;
  opts.runtime_options.max_ratio = 3.0;

  opts.enforce_walltime = true;
  SimResult r = run_continuous(tree, log, opts);
  EXPECT_TRUE(r.jobs[0].hit_walltime);
  EXPECT_DOUBLE_EQ(r.jobs[0].actual_runtime, 120.0);

  opts.enforce_walltime = false;
  r = run_continuous(tree, log, opts);
  EXPECT_FALSE(r.jobs[0].hit_walltime);
  EXPECT_DOUBLE_EQ(r.jobs[0].actual_runtime, 300.0);
}

TEST(WalltimeTest, NoEnforcementByDefault) {
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 4, 100.0, 100.0)};
  const SimResult r = run_continuous(tree, log, SchedOptions{});
  EXPECT_FALSE(r.jobs[0].hit_walltime);
}

TEST(ExclusiveInSimulatorTest, JobsWaitForIdleSwitchesInsteadOfSharing) {
  // Job 1 taints one leaf with 5 of its 8 nodes; job 2 needs 10 nodes and
  // under exclusive requires two fully idle leaves -> it must wait, while a
  // sharing policy starts it immediately (10 <= 11 free).
  const Tree tree = make_two_level_tree(2, 8);
  JobLog log{job(1, 0.0, 5, 100.0), job(2, 1.0, 10, 100.0)};

  SchedOptions sharing;
  sharing.allocator = AllocatorKind::kDefault;
  const SimResult a = run_continuous(tree, log, sharing);
  EXPECT_DOUBLE_EQ(a.jobs[1].start_time, 1.0);

  SchedOptions excl;
  excl.allocator = AllocatorKind::kExclusive;
  const SimResult b = run_continuous(tree, log, excl);
  EXPECT_DOUBLE_EQ(b.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(b.jobs[1].start_time, 100.0);  // §2's wait-time penalty
}

TEST(ExclusiveInSimulatorTest, BackfillStillWorksAroundBlockedHead) {
  // Head needs 2 idle leaves, only one is idle; a small job that fits the
  // idle leaf and ends before the reservation may still backfill.
  const Tree tree = make_two_level_tree(2, 8);
  JobLog log{job(1, 0.0, 6, 100.0),   // occupies leaf 0 (exclusive)
             job(2, 1.0, 12, 100.0),  // needs both leaves -> waits
             job(3, 2.0, 4, 50.0)};   // fits the idle leaf, ends by t=100
  SchedOptions opts;
  opts.allocator = AllocatorKind::kExclusive;
  const SimResult r = run_continuous(tree, log, opts);
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 2.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
}

TEST(ExclusiveInSimulatorTest, EveryJobEventuallyRuns) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log;
  for (int i = 0; i < 20; ++i)
    log.push_back(job(i + 1, i * 2.0, 1 + (i * 5) % 12, 30.0 + i));
  SchedOptions opts;
  opts.allocator = AllocatorKind::kExclusive;
  const SimResult r = run_continuous(tree, log, opts);
  ASSERT_EQ(r.jobs.size(), log.size());
  for (const auto& jr : r.jobs) EXPECT_GT(jr.actual_runtime, 0.0);
}

}  // namespace
}  // namespace commsched
