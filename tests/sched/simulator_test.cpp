#include "sched/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

JobRecord job(WorkloadJobId id, double submit, int nodes, double runtime,
              double walltime = 0.0, bool comm = false,
              double comm_fraction = 0.0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.runtime = runtime;
  j.walltime = walltime > 0.0 ? walltime : runtime;
  j.comm_intensive = comm;
  j.comm_fraction = comm_fraction;
  j.pattern = Pattern::kRecursiveDoubling;
  return j;
}

SchedOptions options(AllocatorKind kind, bool backfill = true) {
  SchedOptions o;
  o.allocator = kind;
  o.easy_backfill = backfill;
  return o;
}

TEST(SimulatorTest, SingleJobRunsImmediately) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 4, 100.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].end_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].wait_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 100.0);
  EXPECT_EQ(r.allocator_name, "default");
}

TEST(SimulatorTest, FifoOrderWhenMachineIsFull) {
  // Machine of 8; two 8-node jobs: second waits for the first.
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 8, 100.0), job(2, 10.0, 8, 50.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].wait_time(), 90.0);
  EXPECT_DOUBLE_EQ(r.makespan, 150.0);
}

TEST(SimulatorTest, ConcurrentJobsShareTheMachine) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 4, 100.0), job(2, 0.0, 4, 80.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  EXPECT_DOUBLE_EQ(r.jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 0.0);
}

TEST(SimulatorTest, BackfillLetsSmallJobJumpAhead) {
  // J1 takes the whole machine until t=100. J2 (8 nodes) must wait for it.
  // J3 (2 nodes, walltime 50) fits now and ends before J2's reservation
  // at t=100 -> EASY starts it immediately.
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 6, 100.0), job(2, 1.0, 8, 100.0),
                   job(3, 2.0, 2, 50.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 2.0);   // backfilled
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0); // head not delayed
}

TEST(SimulatorTest, BackfillRefusesJobThatWouldDelayHead) {
  // Same but J3's walltime (200) overlaps the head's reservation and would
  // occupy nodes the head needs -> must not backfill.
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 6, 100.0), job(2, 1.0, 8, 100.0),
                   job(3, 2.0, 2, 200.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
  EXPECT_GE(r.jobs[2].start_time, 100.0);
}

TEST(SimulatorTest, BackfillIntoSpareNodesBeyondHeadNeed) {
  // Head needs 6 of 8 nodes at its reservation; a long 2-node job fits the
  // 2 spare nodes and may run despite overlapping the reservation.
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 8, 100.0), job(2, 1.0, 6, 100.0),
                   job(3, 2.0, 2, 500.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  EXPECT_DOUBLE_EQ(r.jobs[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start_time, 100.0);  // extra-nodes backfill
}

TEST(SimulatorTest, NoBackfillBlocksBehindHead) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 6, 100.0), job(2, 1.0, 8, 100.0),
                   job(3, 2.0, 2, 50.0)};
  const SimResult r = run_continuous(
      tree, log, options(AllocatorKind::kDefault, /*backfill=*/false));
  EXPECT_GE(r.jobs[2].start_time, 100.0);  // strict FIFO
}

TEST(SimulatorTest, DefaultAllocatorNeverChangesRuntime) {
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0, 150.0, true, 0.9),
             job(2, 0.0, 4, 60.0, 90.0, true, 0.9)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kDefault));
  for (const auto& jr : r.jobs)
    EXPECT_DOUBLE_EQ(jr.actual_runtime, jr.original_runtime);
}

TEST(SimulatorTest, JobAwareRunsRecordBothCosts) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log;
  for (int i = 0; i < 6; ++i)
    log.push_back(job(i + 1, i * 5.0, 8, 300.0, 400.0, true, 0.8));
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kBalanced));
  for (const auto& jr : r.jobs) {
    EXPECT_GT(jr.cost, 0.0);
    EXPECT_GT(jr.cost_default, 0.0);
    // Eq. 7: actual = 0.2*T + 0.8*T*ratio.
    const double ratio = jr.cost / jr.cost_default;
    const double expected =
        0.2 * jr.original_runtime +
        0.8 * jr.original_runtime * std::clamp(ratio, 0.05, 20.0);
    EXPECT_NEAR(jr.actual_runtime, expected, 1e-9);
  }
}

TEST(SimulatorTest, ComputeJobsNeverPriced) {
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 8, 100.0, 100.0, false)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kAdaptive));
  EXPECT_DOUBLE_EQ(r.jobs[0].cost, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].actual_runtime, 100.0);
}

TEST(SimulatorTest, EveryJobRunsExactlyOnce) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log;
  for (int i = 0; i < 40; ++i)
    log.push_back(job(i + 1, i * 3.0, 1 + (i % 16), 50.0 + i, 0.0,
                      i % 2 == 0, 0.5));
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    const SimResult r = run_continuous(tree, log, options(kind));
    ASSERT_EQ(r.jobs.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(r.jobs[i].id, log[i].id);
      EXPECT_GE(r.jobs[i].start_time, log[i].submit_time);
      EXPECT_GT(r.jobs[i].actual_runtime, 0.0);
      EXPECT_NEAR(r.jobs[i].end_time,
                  r.jobs[i].start_time + r.jobs[i].actual_runtime, 1e-9);
    }
  }
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const Tree tree = make_two_level_tree(4, 8);
  JobLog log;
  for (int i = 0; i < 30; ++i)
    log.push_back(job(i + 1, i * 2.0, 1 + (i * 7) % 20, 40.0 + i, 0.0,
                      i % 3 != 0, 0.6));
  const SimResult a =
      run_continuous(tree, log, options(AllocatorKind::kAdaptive));
  const SimResult b =
      run_continuous(tree, log, options(AllocatorKind::kAdaptive));
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].start_time, b.jobs[i].start_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].actual_runtime, b.jobs[i].actual_runtime);
    EXPECT_DOUBLE_EQ(a.jobs[i].cost, b.jobs[i].cost);
  }
}

TEST(SimulatorTest, MakespanIsLastCompletion) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 2, 100.0), job(2, 5.0, 2, 30.0)};
  const SimResult r =
      run_continuous(tree, log, options(AllocatorKind::kGreedy));
  double last_end = 0.0;
  for (const auto& jr : r.jobs) last_end = std::max(last_end, jr.end_time);
  EXPECT_DOUBLE_EQ(r.makespan, last_end);
}

TEST(SimulatorTest, RejectsOversizedJob) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 0.0, 9, 100.0)};
  EXPECT_THROW(run_continuous(tree, log, options(AllocatorKind::kDefault)),
               InvariantError);
}

TEST(SimulatorTest, RejectsUnsortedLog) {
  const Tree tree = make_figure2_tree();
  const JobLog log{job(1, 10.0, 2, 100.0), job(2, 5.0, 2, 100.0)};
  EXPECT_THROW(run_continuous(tree, log, options(AllocatorKind::kDefault)),
               InvariantError);
}

TEST(SimulatorTest, RejectsNonPositiveRuntime) {
  const Tree tree = make_figure2_tree();
  JobLog log{job(1, 0.0, 2, 0.0)};
  log[0].walltime = 10.0;
  EXPECT_THROW(run_continuous(tree, log, options(AllocatorKind::kDefault)),
               InvariantError);
}

TEST(SimulatorTest, EmptyLogIsFine) {
  const Tree tree = make_figure2_tree();
  const SimResult r =
      run_continuous(tree, {}, options(AllocatorKind::kDefault));
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

// Backfill must never delay the queue head relative to plain FIFO.
class BackfillHeadProtection : public ::testing::TestWithParam<int> {};

TEST_P(BackfillHeadProtection, HeadStartsNoLaterThanWithoutBackfill) {
  const Tree tree = make_two_level_tree(2, 8);
  JobLog log;
  const int variant = GetParam();
  // A full-machine head job behind a long runner, plus small filler jobs.
  log.push_back(job(1, 0.0, 10, 200.0));
  log.push_back(job(2, 1.0, 16, 100.0));  // head-of-queue big job
  for (int i = 0; i < 6; ++i)
    log.push_back(job(3 + i, 2.0 + i, 1 + (i * variant) % 5,
                      20.0 + 10.0 * ((i + variant) % 4)));
  const SimResult with = run_continuous(tree, log, options(AllocatorKind::kDefault, true));
  const SimResult without = run_continuous(tree, log, options(AllocatorKind::kDefault, false));
  // Job 2 (index 1) is the job the reservation protects.
  EXPECT_LE(with.jobs[1].start_time, without.jobs[1].start_time + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Variants, BackfillHeadProtection,
                         ::testing::Values(1, 2, 3, 5, 7));

}  // namespace
}  // namespace commsched
