#include "sched/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

TEST(TraceJsonTest, RoundTripsEachKind) {
  for (const auto kind :
       {TraceEvent::Kind::kSubmit, TraceEvent::Kind::kStart,
        TraceEvent::Kind::kEnd}) {
    TraceEvent e;
    e.kind = kind;
    e.time = 123.456;
    e.job = 42;
    e.num_nodes = 64;
    const auto parsed = trace_event_from_json(trace_event_to_json(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, e.kind);
    EXPECT_NEAR(parsed->time, e.time, 1e-6);
    EXPECT_EQ(parsed->job, e.job);
    EXPECT_EQ(parsed->num_nodes, e.num_nodes);
  }
}

TEST(TraceJsonTest, RejectsMalformedLines) {
  EXPECT_FALSE(trace_event_from_json("").has_value());
  EXPECT_FALSE(trace_event_from_json("{}").has_value());
  EXPECT_FALSE(trace_event_from_json(
                   R"({"ev":"levitate","t":1,"job":1,"nodes":1})")
                   .has_value());
  EXPECT_FALSE(trace_event_from_json(
                   R"({"ev":"start","t":"xx","job":1,"nodes":1})")
                   .has_value());
}

TEST(TraceJsonTest, SinkWritesOneLinePerEvent) {
  std::ostringstream out;
  const auto sink = make_json_trace_sink(out);
  sink({TraceEvent::Kind::kSubmit, 0.0, 1, 4});
  sink({TraceEvent::Kind::kStart, 1.0, 1, 4});
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(trace_event_from_json(line).has_value());
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

// --- The trace as a simulator oracle --------------------------------------

std::vector<TraceEvent> trace_of(const Tree& tree, const JobLog& log,
                                 AllocatorKind kind) {
  std::vector<TraceEvent> events;
  SchedOptions opts;
  opts.allocator = kind;
  opts.trace = [&](const TraceEvent& e) { events.push_back(e); };
  run_continuous(tree, log, opts);
  return events;
}

class TraceOracle : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(TraceOracle, EventStreamIsConsistent) {
  const Tree tree = make_two_level_tree(4, 8);
  LogProfile profile = theta_profile();
  profile.machine_nodes = 32;
  profile.min_exp = 0;
  profile.max_exp = 5;
  JobLog log = generate_log(profile, 120, 77);
  apply_mix(log, uniform_mix(Pattern::kRecursiveHalvingVD, 0.7, 0.5), 78);

  const auto events = trace_of(tree, log, GetParam());
  // Every job contributes exactly submit, start, end.
  EXPECT_EQ(events.size(), log.size() * 3);

  double prev_time = 0.0;
  std::map<WorkloadJobId, TraceEvent::Kind> last_kind;
  std::map<WorkloadJobId, double> submit_at, start_at;
  int nodes_busy = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.time, prev_time) << "events out of order";
    prev_time = e.time;
    switch (e.kind) {
      case TraceEvent::Kind::kSubmit:
        EXPECT_FALSE(last_kind.contains(e.job)) << "double submit";
        submit_at[e.job] = e.time;
        break;
      case TraceEvent::Kind::kStart:
        ASSERT_TRUE(last_kind.contains(e.job)) << "start before submit";
        EXPECT_EQ(last_kind[e.job], TraceEvent::Kind::kSubmit);
        EXPECT_GE(e.time, submit_at[e.job]);
        start_at[e.job] = e.time;
        nodes_busy += e.num_nodes;
        // The machine must never be oversubscribed.
        EXPECT_LE(nodes_busy, tree.node_count());
        break;
      case TraceEvent::Kind::kEnd:
        ASSERT_TRUE(last_kind.contains(e.job)) << "end before submit";
        EXPECT_EQ(last_kind[e.job], TraceEvent::Kind::kStart);
        EXPECT_GT(e.time, start_at[e.job]);
        nodes_busy -= e.num_nodes;
        EXPECT_GE(nodes_busy, 0);
        break;
    }
    last_kind[e.job] = e.kind;
  }
  EXPECT_EQ(nodes_busy, 0) << "machine not empty at the end";
  for (const auto& [job, kind] : last_kind)
    EXPECT_EQ(kind, TraceEvent::Kind::kEnd) << "job " << job << " unfinished";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, TraceOracle,
                         ::testing::Values(AllocatorKind::kDefault,
                                           AllocatorKind::kGreedy,
                                           AllocatorKind::kBalanced,
                                           AllocatorKind::kAdaptive,
                                           AllocatorKind::kExclusive));

}  // namespace
}  // namespace commsched
