// Fault-injection against the real allocd binary (wired in via the
// COMMSCHED_ALLOCD_BIN compile definition): SIGKILL the daemon mid-burst
// — the client surfaces connection errors instead of hanging — then
// restart it with the same arguments and replay the full stream; every
// re-sent idempotent request id gets a reply byte-identical to the
// inline-oracle log, because the restarted service is the same
// deterministic state machine. A drain request makes the daemon exit 0.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fcntl.h>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "slurm/conf.hpp"
#include "topology/builders.hpp"

namespace commsched::serve {
namespace {

constexpr int kLeaves = 4;
constexpr int kNodesPerLeaf = 8;

std::string unique_socket(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/commsched_kill_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// Fork/exec allocd on `socket_path` with the fixed test topology. The
// child's stdout goes to /dev/null so its banner stays out of the test
// log.
pid_t spawn_allocd(const std::string& socket_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::close(devnull);
  }
  ::execl(COMMSCHED_ALLOCD_BIN, "allocd", "--socket", socket_path.c_str(),
          "--leaves", "4", "--nodes-per-leaf", "8", "--threads", "2",
          static_cast<char*>(nullptr));
  _exit(127);
}

bool connect_with_retry(Client& client, const std::string& socket_path) {
  for (int i = 0; i < 500; ++i) {
    if (client.connect(socket_path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// The inline oracle must be configured exactly as allocd configures
// itself from a default slurm.conf.
ServiceOptions allocd_service_options() {
  const SlurmConf conf;
  ServiceOptions options;
  options.default_allocator = conf.sched.allocator;
  options.cost_options = conf.sched.cost_options;
  options.sa = conf.sched.sa;
  return options;
}

LoadStream stream_slice(const LoadStream& stream, std::size_t begin,
                        std::size_t end) {
  LoadStream out;
  out.requests.assign(stream.requests.begin() +
                          static_cast<std::ptrdiff_t>(begin),
                      stream.requests.begin() +
                          static_cast<std::ptrdiff_t>(end));
  out.send_time.assign(stream.send_time.begin() +
                           static_cast<std::ptrdiff_t>(begin),
                       stream.send_time.begin() +
                           static_cast<std::ptrdiff_t>(end));
  return out;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(DaemonKill, SigkillMidBurstThenRestartServesIdenticalReplies) {
  const Tree tree = make_two_level_tree(kLeaves, kNodesPerLeaf);
  LoadSpec spec;
  spec.requests = 600;
  const LoadStream stream = build_stream(spec, tree.node_count());
  const std::string oracle =
      joined(reference_log(stream, tree, allocd_service_options()));

  const std::string socket_path = unique_socket("restart");
  pid_t pid = spawn_allocd(socket_path);
  ASSERT_GT(pid, 0);
  Client client;
  ASSERT_TRUE(connect_with_retry(client, socket_path)) << client.error();

  // Phase 1: the first half of the burst lands normally.
  const ReplayResult half =
      replay(client, stream_slice(stream, 0, 300), ReplayOptions{});
  ASSERT_TRUE(half.complete) << client.error();

  // Phase 2: put requests in flight, then SIGKILL the daemon under them.
  for (std::size_t i = 300; i < 350; ++i)
    ASSERT_TRUE(client.send_request(stream.requests[i]));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "daemon status " << status;

  // The client must surface the dead connection as errors, not hang.
  const ReplayResult torn =
      replay(client, stream_slice(stream, 350, 600), ReplayOptions{});
  EXPECT_FALSE(torn.complete);
  EXPECT_GT(torn.io_errors, 0u);
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.error().empty());
  client.close();

  // Phase 3: restart with the same arguments and replay the FULL stream —
  // the re-sent ids from phases 1 and 2 included. A fresh daemon is the
  // same deterministic state machine, so the complete reply log matches
  // the inline oracle byte for byte.
  pid = spawn_allocd(socket_path);
  ASSERT_GT(pid, 0);
  Client fresh;
  ASSERT_TRUE(connect_with_retry(fresh, socket_path)) << fresh.error();
  ReplayOptions replay_options;
  replay_options.collect_log = true;
  const ReplayResult full = replay(fresh, stream, replay_options);
  ASSERT_TRUE(full.complete) << fresh.error();
  EXPECT_EQ(joined(full.log), oracle);

  // Phase 4: graceful shutdown — drain is acknowledged, daemon exits 0.
  Request drain;
  drain.type = MsgType::kDrain;
  drain.req_id = 999999;
  Reply reply;
  ASSERT_TRUE(fresh.call(drain, reply, 10000)) << fresh.error();
  EXPECT_EQ(reply.type, MsgType::kDrainReply);
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  fresh.close();
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon status " << status;
}

TEST(DaemonKill, RestartedDaemonAnswersResentIdempotentIds) {
  // The narrow restart contract by itself: ids answered before the kill,
  // re-sent to the restarted daemon as part of a full replay, get the
  // same node sets and costs the first daemon handed out.
  const Tree tree = make_two_level_tree(kLeaves, kNodesPerLeaf);
  LoadSpec spec;
  spec.requests = 120;
  spec.seed = 7;
  const LoadStream stream = build_stream(spec, tree.node_count());

  const std::string socket_path = unique_socket("idem");
  pid_t pid = spawn_allocd(socket_path);
  ASSERT_GT(pid, 0);
  Client client;
  ASSERT_TRUE(connect_with_retry(client, socket_path)) << client.error();
  ReplayOptions replay_options;
  replay_options.collect_log = true;
  const ReplayResult before = replay(client, stream, replay_options);
  ASSERT_TRUE(before.complete) << client.error();
  client.close();

  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  pid = spawn_allocd(socket_path);
  ASSERT_GT(pid, 0);
  Client fresh;
  ASSERT_TRUE(connect_with_retry(fresh, socket_path)) << fresh.error();
  const ReplayResult after = replay(fresh, stream, replay_options);
  ASSERT_TRUE(after.complete) << fresh.error();
  EXPECT_EQ(after.log, before.log);

  Request drain;
  drain.type = MsgType::kDrain;
  drain.req_id = 1;
  Reply reply;
  ASSERT_TRUE(fresh.call(drain, reply, 10000)) << fresh.error();
  fresh.close();
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

}  // namespace
}  // namespace commsched::serve
