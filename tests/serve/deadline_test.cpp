// Deadlines, admission control and slow-client backpressure: an expired
// request gets kTimeout without touching allocator state; admission-queue
// overflow is answered kRejected with exact accounting; a client that
// stalls mid-frame or stops reading replies is dropped without wedging a
// strand worker.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator_factory.hpp"
#include "serve/client.hpp"
#include "topology/builders.hpp"

namespace commsched::serve {
namespace {

std::string unique_socket(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/commsched_dl_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

Request alloc_request(std::uint64_t req_id, std::int64_t job, int nodes) {
  Request req;
  req.type = MsgType::kAlloc;
  req.req_id = req_id;
  req.job = job;
  req.num_nodes = nodes;
  req.comm_intensive = true;
  return req;
}

// Poll `predicate` until true or ~5 s elapsed.
bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

int raw_connect(const std::string& path, int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(Deadline, ExpiredRequestTimesOutWithoutStateMutation) {
  const Tree tree = make_two_level_tree(4, 8);
  std::atomic<bool> slow{true};
  ServerOptions server_options;
  server_options.socket_path = unique_socket("timeout");
  server_options.threads = 1;
  server_options.test_delay = [&slow] {
    if (slow.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  Server server(tree, ServiceOptions{}, server_options);
  ASSERT_TRUE(server.start()) << server.error();
  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();

  Request req = alloc_request(1, 1, 4);
  req.deadline_ms = 1;  // expires inside the strand's 50 ms stall
  Reply reply;
  ASSERT_TRUE(client.call(req, reply, 5000)) << client.error();
  EXPECT_EQ(reply.status, ServeStatus::kTimeout);
  EXPECT_EQ(server.stats().timeouts, 1u);

  // The timed-out request never touched the cluster and was never cached:
  // the retried id gets a real allocation.
  slow.store(false);
  req.deadline_ms = 0;
  ASSERT_TRUE(client.call(req, reply, 5000)) << client.error();
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(reply.nodes.size(), 4u);
  client.close();
  server.drain();
  EXPECT_EQ(server.service().state().job_count(), 1u);
}

TEST(Deadline, SlowSaRequestExpiresQueuedSuccessor) {
  // An sa request occupies the strand while a 1 ms deadline on the
  // request queued behind it runs out; the successor must expire at
  // dequeue — answered kTimeout, never a hung worker, never a state
  // mutation. The first batch's test_delay stall makes the head-of-line
  // blocking long enough to be deterministic on any machine.
  const Tree tree = make_two_level_tree(8, 16);  // 128 nodes
  ServiceOptions service_options;
  service_options.default_allocator = AllocatorKind::kSa;
  service_options.sa.budget = 50000;
  std::atomic<int> batches{0};
  ServerOptions server_options;
  server_options.socket_path = unique_socket("sa");
  server_options.threads = 1;
  server_options.batch = 1;  // successor dequeues after sa finishes
  server_options.test_delay = [&batches] {
    if (batches.fetch_add(1) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  Server server(tree, service_options, server_options);
  ASSERT_TRUE(server.start()) << server.error();
  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();

  Request slow_req = alloc_request(1, 1, 64);
  ASSERT_TRUE(client.send_request(slow_req));
  Request fast_req = alloc_request(2, 2, 4);
  fast_req.deadline_ms = 1;
  ASSERT_TRUE(client.send_request(fast_req));

  Reply first, second;
  ASSERT_TRUE(client.recv_reply(first, 30000)) << client.error();
  ASSERT_TRUE(client.recv_reply(second, 30000)) << client.error();
  EXPECT_EQ(first.req_id, 1u);
  EXPECT_EQ(first.status, ServeStatus::kOk);
  EXPECT_EQ(second.req_id, 2u);
  EXPECT_EQ(second.status, ServeStatus::kTimeout);
  client.close();
  server.drain();
  EXPECT_EQ(server.service().state().job_count(), 1u)
      << "the timed-out alloc must not have mutated the cluster";
}

TEST(Admission, OverflowRejectionAccountingIsExact) {
  const Tree tree = make_two_level_tree(4, 8);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  ServerOptions server_options;
  server_options.socket_path = unique_socket("reject");
  server_options.threads = 1;
  server_options.queue_depth = 4;
  server_options.batch = 1;
  server_options.test_delay = [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Server server(tree, ServiceOptions{}, server_options);
  ASSERT_TRUE(server.start()) << server.error();
  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();

  constexpr int kTotal = 32;
  for (int i = 0; i < kTotal; ++i)
    ASSERT_TRUE(client.send_request(
        alloc_request(static_cast<std::uint64_t>(i + 1), i + 1, 1)));

  // With the strand gated, exactly queue_depth requests are admitted
  // (queued or in service); every later arrival is rejected by the reader.
  ASSERT_TRUE(eventually([&] { return server.stats().frames_in == kTotal; }));
  EXPECT_EQ(server.stats().rejected,
            static_cast<std::uint64_t>(kTotal) - 4);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();

  int ok = 0, rejected = 0, other = 0;
  Reply reply;
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(client.recv_reply(reply, 10000)) << client.error();
    if (reply.status == ServeStatus::kOk) ++ok;
    else if (reply.status == ServeStatus::kRejected) ++rejected;
    else ++other;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(rejected, kTotal - 4);
  EXPECT_EQ(other, 0);
  client.close();
  server.drain();
  // The service only ever saw the admitted requests.
  EXPECT_EQ(server.service().counters().served, 4u);
  EXPECT_EQ(server.stats().rejected, static_cast<std::uint64_t>(kTotal) - 4);
}

TEST(SlowClient, StallingWriterIsDroppedOthersUnaffected) {
  const Tree tree = make_two_level_tree(4, 8);
  ServerOptions server_options;
  server_options.socket_path = unique_socket("stallwrite");
  server_options.idle_timeout_ms = 200;
  Server server(tree, ServiceOptions{}, server_options);
  ASSERT_TRUE(server.start()) << server.error();

  // A client that sends half a frame and then goes silent.
  const int staller = raw_connect(server_options.socket_path);
  ASSERT_GE(staller, 0);
  const std::uint8_t torn[2] = {0x40, 0x00};  // first half of a length
  ASSERT_EQ(::send(staller, torn, sizeof(torn), 0),
            static_cast<ssize_t>(sizeof(torn)));

  EXPECT_TRUE(
      eventually([&] { return server.stats().connections_dropped >= 1; }))
      << "idle timeout should drop the stalled connection";

  // A healthy client on the same server is unaffected.
  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();
  Reply reply;
  ASSERT_TRUE(client.call(alloc_request(1, 1, 4), reply, 5000))
      << client.error();
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  ::close(staller);
  client.close();
  server.drain();
}

TEST(SlowClient, StalledReaderIsDroppedWithoutWedgingWorkers) {
  const Tree tree = make_two_level_tree(4, 8);
  ServerOptions server_options;
  server_options.socket_path = unique_socket("stallread");
  server_options.threads = 2;
  server_options.write_timeout_ms = 200;
  server_options.send_buffer_bytes = 4096;  // make backpressure cheap to hit
  Server server(tree, ServiceOptions{}, server_options);
  ASSERT_TRUE(server.start()) << server.error();

  // Flood queries from a client that never reads its replies; reply bytes
  // pile up until the write times out and the connection is dropped.
  const int hog = raw_connect(server_options.socket_path, 2048);
  ASSERT_GE(hog, 0);
  std::vector<std::uint8_t> frames;
  for (std::uint64_t i = 1; i <= 5000; ++i) {
    Request query;
    query.type = MsgType::kQuery;
    query.req_id = i;
    encode_request(query, frames);
  }
  // Push bytes until the server stops absorbing them (our own send buffer
  // fills once the server's reply writes stall) or everything is written.
  std::size_t off = 0;
  while (off < frames.size()) {
    const ssize_t n = ::send(hog, frames.data() + off,
                             std::min<std::size_t>(frames.size() - off, 4096),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  EXPECT_TRUE(
      eventually([&] { return server.stats().connections_dropped >= 1; }))
      << "write timeout should drop the never-reading client";

  // Both strand workers are still alive and serving.
  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();
  Reply reply;
  ASSERT_TRUE(client.call(alloc_request(1, 77, 4), reply, 5000))
      << client.error();
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  ::close(hog);
  client.close();
  server.drain();
}

}  // namespace
}  // namespace commsched::serve
