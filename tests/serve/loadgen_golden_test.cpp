// Golden-file lockdown of the load generator: the encoded request stream
// (hex image of every wire frame), the open-loop send schedule, and the
// wall-time-stripped reply log for a fixed seed are compared byte for
// byte against files checked into tests/serve/golden/. The reply log is
// additionally replayed through a real daemon at worker counts {1, 4} —
// COMMSCHED_THREADS and strand scheduling must never leak into replies.
//
// To regenerate after an *intentional* generator or pricing change:
//   COMMSCHED_REGEN_GOLDEN=1 ./serve_loadgen_golden_test
// then review the diff and commit the new goldens.
#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "topology/builders.hpp"
#include "util/file_io.hpp"
#include "util/json.hpp"

namespace commsched::serve {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(COMMSCHED_SERVE_GOLDEN_DIR) + "/" + name;
}

bool regen() { return std::getenv("COMMSCHED_REGEN_GOLDEN") != nullptr; }

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) ADD_FAILURE() << "missing golden file " << path
                        << " (run with COMMSCHED_REGEN_GOLDEN=1 to create)";
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void expect_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (regen()) {
    write_file_atomic(path, actual);
    SUCCEED() << "regenerated " << path;
    return;
  }
  EXPECT_EQ(read_file(path), actual) << "golden mismatch for " << name;
}

// Hex dump, 16 bytes per line: reviewable in a diff, still byte-exact.
std::string hex_image(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.push_back(kDigits[bytes[i] >> 4]);
    out.push_back(kDigits[bytes[i] & 0xf]);
    out.push_back((i + 1) % 16 == 0 ? '\n' : ' ');
  }
  if (!out.empty() && out.back() == ' ') out.back() = '\n';
  return out;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// The pinned scenario: bursty paced traffic with deadlines and an
// explicit allocator byte, on a 32-node machine.
LoadSpec golden_spec() {
  LoadSpec spec;
  spec.seed = 20200817;
  spec.requests = 300;
  spec.max_exp = 4;
  spec.arrival_rate = 5000.0;
  spec.burstiness = 0.6;
  spec.burst_period = 80.0;
  return spec;
}

constexpr int kGoldenLeaves = 4;
constexpr int kGoldenNodesPerLeaf = 8;

TEST(LoadgenGolden, RequestStreamBytesArePinned) {
  const LoadStream stream =
      build_stream(golden_spec(), kGoldenLeaves * kGoldenNodesPerLeaf);
  std::vector<std::uint8_t> bytes;
  encode_stream(stream, bytes);
  expect_golden("loadgen_stream.hex", hex_image(bytes));
}

TEST(LoadgenGolden, SendScheduleIsPinned) {
  const LoadStream stream =
      build_stream(golden_spec(), kGoldenLeaves * kGoldenNodesPerLeaf);
  std::vector<std::string> lines;
  lines.reserve(stream.send_time.size());
  for (const double t : stream.send_time) lines.push_back(json_number(t));
  expect_golden("loadgen_schedule.txt", joined(lines));
}

TEST(LoadgenGolden, ReplyLogIsPinned) {
  const Tree tree = make_two_level_tree(kGoldenLeaves, kGoldenNodesPerLeaf);
  const LoadStream stream = build_stream(golden_spec(), tree.node_count());
  expect_golden("loadgen_replies.log",
                joined(reference_log(stream, tree, ServiceOptions{})));
}

TEST(LoadgenGolden, DaemonReplayMatchesGoldenAtAnyWorkerCount) {
  // The same stream through a real daemon — replies must equal the
  // checked-in golden log regardless of the strand worker count. (In
  // regen mode the reference test above rewrites the golden; this test
  // then still cross-checks the daemon against the fresh oracle.)
  const Tree tree = make_two_level_tree(kGoldenLeaves, kGoldenNodesPerLeaf);
  const LoadStream stream = build_stream(golden_spec(), tree.node_count());
  const std::string expected =
      regen() ? joined(reference_log(stream, tree, ServiceOptions{}))
              : read_file(golden_path("loadgen_replies.log"));

  for (const int threads : {1, 4}) {
    ServerOptions server_options;
    server_options.socket_path = std::string(::testing::TempDir()) +
                                 "/commsched_golden_w" +
                                 std::to_string(threads) + "_" +
                                 std::to_string(::getpid()) + ".sock";
    server_options.threads = threads;
    Server server(tree, ServiceOptions{}, server_options);
    ASSERT_TRUE(server.start()) << server.error();
    Client client;
    ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();
    ReplayOptions replay_options;
    replay_options.collect_log = true;
    const ReplayResult result = replay(client, stream, replay_options);
    ASSERT_TRUE(result.complete) << client.error();
    EXPECT_EQ(joined(result.log), expected) << "workers=" << threads;
    client.close();
    server.drain();
  }
}

}  // namespace
}  // namespace commsched::serve
