// Differential test pinning the daemon determinism contract: every reply
// that comes back over the socket is bit-identical to what an inline
// AllocatorService (and therefore an inline Allocator::select() +
// CostModel::candidate_cost(), see service_test.cpp) produces for the
// same request stream — across allocators (including sa) and across
// strand worker counts {1, 4, 8}. Costs are compared through their
// shortest-round-trip decimal rendering (json_number), which is exact
// for doubles, and node sets rank by rank — a canonical log line per
// stream position, diffed byte for byte.
//
// This is also the server path's TSan leg: reader threads, the strand on
// the shared pool, admission control and reply writes all run under the
// sanitizer matrix here.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/allocator_factory.hpp"
#include "serve/loadgen.hpp"
#include "topology/builders.hpp"

namespace commsched::serve {
namespace {

std::string unique_socket(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/commsched_diff_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// Replay `stream` against an in-process server with `threads` strand
// workers and return the canonical reply log.
std::vector<std::string> daemon_log(const Tree& tree,
                                    const ServiceOptions& service_options,
                                    const LoadStream& stream, int threads,
                                    const std::string& tag) {
  ServerOptions server_options;
  server_options.socket_path = unique_socket(tag);
  server_options.threads = threads;
  Server server(tree, service_options, server_options);
  EXPECT_TRUE(server.start()) << server.error();
  Client client;
  EXPECT_TRUE(client.connect(server_options.socket_path)) << client.error();
  ReplayOptions replay_options;
  replay_options.collect_log = true;
  const ReplayResult result = replay(client, stream, replay_options);
  EXPECT_TRUE(result.complete)
      << tag << ": " << result.io_errors << " io errors, " << client.error();
  EXPECT_EQ(result.rejected, 0u) << tag;
  EXPECT_EQ(result.timeouts, 0u) << tag;
  client.close();
  server.drain();
  return result.log;
}

void expect_logs_equal(const std::vector<std::string>& daemon,
                       const std::vector<std::string>& inline_ref,
                       const std::string& tag) {
  ASSERT_EQ(daemon.size(), inline_ref.size()) << tag;
  for (std::size_t i = 0; i < daemon.size(); ++i)
    ASSERT_EQ(daemon[i], inline_ref[i]) << tag << " diverges at stream "
                                        << "position " << i;
}

class ServerDiffTest : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(ServerDiffTest, DaemonMatchesInlineAtEveryWorkerCount) {
  const AllocatorKind kind = GetParam();
  const Tree tree = make_two_level_tree(8, 8);  // 64 nodes

  ServiceOptions service_options;
  service_options.audit = AuditLevel::kCheap;
  service_options.sa.budget = 32;  // keep sa affordable under sanitizers

  LoadSpec spec;
  spec.requests = kind == AllocatorKind::kSa ? 600 : 2000;
  spec.allocator = static_cast<std::uint8_t>(kind);
  const LoadStream stream = build_stream(spec, tree.node_count());

  const std::vector<std::string> inline_ref =
      reference_log(stream, tree, service_options);

  for (const int threads : {1, 4, 8}) {
    const std::string tag = std::string(allocator_kind_name(kind)) + "-w" +
                            std::to_string(threads);
    expect_logs_equal(
        daemon_log(tree, service_options, stream, threads, tag), inline_ref,
        tag);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Allocators, ServerDiffTest,
    ::testing::Values(AllocatorKind::kDefault, AllocatorKind::kAdaptive,
                      AllocatorKind::kSa),
    [](const ::testing::TestParamInfo<AllocatorKind>& param_info) {
      return std::string(allocator_kind_name(param_info.param));
    });

TEST(ServerDiff, ServerDefaultPolicyMatchesInline) {
  // allocator byte 0xff routes to the server's configured default.
  const Tree tree = make_two_level_tree(4, 8);
  ServiceOptions service_options;
  service_options.default_allocator = AllocatorKind::kBalanced;
  service_options.audit = AuditLevel::kCheap;
  LoadSpec spec;
  spec.requests = 500;  // allocator stays kServerAllocator
  const LoadStream stream = build_stream(spec, tree.node_count());
  expect_logs_equal(
      daemon_log(tree, service_options, stream, 4, "default-policy"),
      reference_log(stream, tree, service_options), "default-policy");
}

TEST(ServerDiff, ConcurrentConnectionsStayPerStreamDeterministic) {
  // Two clients with disjoint job/req-id spaces replaying concurrently:
  // each stream's log must match its own single-client run. (Cross-stream
  // interleaving on the shared ClusterState is allowed to differ — the
  // contract is per connection — so each client gets its own half of the
  // machine via job sizes that always fit.)
  const Tree tree = make_two_level_tree(8, 8);
  ServiceOptions service_options;
  ServerOptions server_options;
  server_options.socket_path = unique_socket("multi");
  server_options.threads = 4;
  Server server(tree, service_options, server_options);
  ASSERT_TRUE(server.start()) << server.error();

  // Single-connection streams must replay identically under a concurrent
  // sibling issuing only queries (queries never mutate cluster state).
  LoadSpec spec;
  spec.requests = 800;
  const LoadStream stream = build_stream(spec, tree.node_count());
  const std::vector<std::string> solo_ref =
      reference_log(stream, tree, service_options);

  Client noisy;
  ASSERT_TRUE(noisy.connect(server_options.socket_path)) << noisy.error();
  LoadStream queries;
  for (std::uint64_t i = 0; i < 200; ++i) {
    Request q;
    q.type = MsgType::kQuery;
    q.req_id = 1000000 + i;
    queries.requests.push_back(q);
  }
  queries.send_time.assign(queries.requests.size(), 0.0);

  Client client;
  ASSERT_TRUE(client.connect(server_options.socket_path)) << client.error();
  ReplayOptions replay_options;
  replay_options.collect_log = true;

  // Interleave: fire the query stream, then the real stream, then drain
  // both. The query client's replies are position-independent reads.
  const ReplayResult noise = replay(noisy, queries, ReplayOptions{});
  const ReplayResult result = replay(client, stream, replay_options);
  EXPECT_TRUE(noise.complete);
  ASSERT_TRUE(result.complete) << client.error();
  expect_logs_equal(result.log, solo_ref, "with-query-noise");
  client.close();
  noisy.close();
  server.drain();
}

}  // namespace
}  // namespace commsched::serve
