// AllocatorService semantics: outcome statuses, idempotency window,
// counters, and equivalence with an inline Allocator::select() +
// CostModel::candidate_cost() on the same state (the in-process half of
// the daemon determinism contract; the socket half lives in
// server_diff_test.cpp).
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "collectives/comm_cache.hpp"
#include "core/allocator_factory.hpp"
#include "core/degradation_model.hpp"
#include "serve/loadgen.hpp"
#include "topology/builders.hpp"

namespace commsched::serve {
namespace {

ServiceOptions quiet_options() {
  ServiceOptions options;
  options.audit = AuditLevel::kFull;  // tests always audit
  return options;
}

Request alloc_request(std::uint64_t req_id, std::int64_t job, int nodes) {
  Request req;
  req.type = MsgType::kAlloc;
  req.req_id = req_id;
  req.job = job;
  req.num_nodes = nodes;
  req.comm_intensive = true;
  req.pattern = Pattern::kRecursiveDoubling;
  return req;
}

Request release_request(std::uint64_t req_id, std::int64_t job) {
  Request req;
  req.type = MsgType::kRelease;
  req.req_id = req_id;
  req.job = job;
  return req;
}

TEST(AllocatorService, AllocReleaseLifecycle) {
  const Tree tree = make_two_level_tree(4, 8);
  AllocatorService service(tree, quiet_options());
  Reply reply;

  service.handle(alloc_request(1, 10, 8), reply);
  ASSERT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(reply.type, MsgType::kAllocReply);
  EXPECT_EQ(reply.nodes.size(), 8u);
  EXPECT_GT(reply.cost, 0.0);
  EXPECT_EQ(service.state().job_count(), 1u);
  EXPECT_EQ(service.state().total_free(), 24);

  service.handle(release_request(2, 10), reply);
  ASSERT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(reply.type, MsgType::kReleaseReply);
  EXPECT_EQ(reply.freed, 8u);
  EXPECT_EQ(service.state().job_count(), 0u);
  EXPECT_EQ(service.state().total_free(), 32);
}

TEST(AllocatorService, ReplyMatchesInlineSelect) {
  // The service's answer for each allocator byte must equal what calling
  // the allocator + cost model inline on an identical state produces.
  const Tree tree = make_two_level_tree(4, 8);
  for (const AllocatorKind kind :
       {AllocatorKind::kDefault, AllocatorKind::kGreedy,
        AllocatorKind::kBalanced, AllocatorKind::kAdaptive,
        AllocatorKind::kSa}) {
    ServiceOptions options = quiet_options();
    options.sa.budget = 32;
    AllocatorService service(tree, options);

    auto cache = std::make_shared<CommCache>(options.base_msize);
    const auto allocator =
        make_allocator(kind, options.cost_options, cache, options.sa);
    CostModel metric_model(
        tree, CostOptions{.hop_bytes = false,
                          .include_candidate =
                              options.cost_options.include_candidate});
    ClusterState state(tree);
    CostWorkspace workspace;

    for (int i = 0; i < 6; ++i) {
      Request req = alloc_request(static_cast<std::uint64_t>(i + 1), i + 1,
                                  1 << (i % 3 + 1));
      req.allocator = static_cast<std::uint8_t>(kind);
      Reply reply;
      service.handle(req, reply);

      AllocationRequest areq;
      areq.job = req.job;
      areq.num_nodes = req.num_nodes;
      areq.comm_intensive = req.comm_intensive;
      areq.pattern = req.pattern;
      areq.msize = req.msize;
      areq.comm_fraction = req.comm_fraction;
      std::vector<NodeId> nodes;
      const bool fit = allocator->select_into(state, areq, nodes);
      ASSERT_EQ(reply.status == ServeStatus::kOk, fit) << "job " << req.job;
      if (!fit) continue;
      ASSERT_EQ(reply.nodes.size(), nodes.size());
      for (std::size_t r = 0; r < nodes.size(); ++r)
        EXPECT_EQ(reply.nodes[r], static_cast<std::uint32_t>(nodes[r]))
            << allocator_kind_name(kind) << " rank " << r;
      const LeafCommProfile& profile =
          cache->profile(req.pattern, 1, make_shape_key(tree, nodes));
      const double cost = metric_model.candidate_cost(
          state, nodes, true, profile, workspace);
      EXPECT_EQ(reply.cost, cost) << allocator_kind_name(kind);
      state.allocate(req.job, req.comm_intensive, nodes, req.io_intensive,
                     DegradationModel::quantize_load(
                         req.comm_intensive && req.num_nodes >= 2,
                         req.comm_fraction));
    }
  }
}

TEST(AllocatorService, OutcomeStatuses) {
  const Tree tree = make_two_level_tree(2, 4);  // 8 nodes
  AllocatorService service(tree, quiet_options());
  Reply reply;

  service.handle(alloc_request(1, 1, 16), reply);
  EXPECT_EQ(reply.status, ServeStatus::kNoFit) << "larger than the machine";

  service.handle(alloc_request(2, 1, 4), reply);
  ASSERT_EQ(reply.status, ServeStatus::kOk);
  service.handle(alloc_request(3, 1, 2), reply);
  EXPECT_EQ(reply.status, ServeStatus::kDuplicateJob);

  service.handle(release_request(4, 999), reply);
  EXPECT_EQ(reply.status, ServeStatus::kUnknownJob);

  Request hello;
  hello.type = MsgType::kHello;
  hello.req_id = 5;
  service.handle(hello, reply);
  EXPECT_EQ(reply.type, MsgType::kHelloAck);
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  hello.req_id = 6;
  hello.version = kProtocolVersion + 1;
  service.handle(hello, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);
}

TEST(AllocatorService, BadRequestsAreRejectedAndNeverCached) {
  const Tree tree = make_two_level_tree(2, 4);
  AllocatorService service(tree, quiet_options());
  Reply reply;

  Request bad = alloc_request(1, 1, 0);  // num_nodes <= 0
  service.handle(bad, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);

  bad = alloc_request(1, -5, 2);  // negative job
  service.handle(bad, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);

  bad = alloc_request(1, 1, 2);
  bad.allocator = 42;  // not a kind, not kServerAllocator
  service.handle(bad, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);

  bad = alloc_request(1, 1, 2);
  bad.comm_fraction = 1.5;
  service.handle(bad, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);

  bad = alloc_request(1, 1, 2);
  bad.msize = std::nan("");
  service.handle(bad, reply);
  EXPECT_EQ(reply.status, ServeStatus::kBadRequest);

  EXPECT_EQ(service.counters().bad_requests, 5u);
  EXPECT_EQ(service.counters().idempotent_hits, 0u);

  // The same req_id with valid contents now gets the real answer: bad
  // requests never enter the idempotency window.
  service.handle(alloc_request(1, 1, 2), reply);
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(service.counters().idempotent_hits, 0u);
}

TEST(AllocatorService, IdempotentRetryReturnsStoredReply) {
  const Tree tree = make_two_level_tree(4, 8);
  AllocatorService service(tree, quiet_options());
  Reply first, retry;

  service.handle(alloc_request(1, 1, 4), first);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  service.handle(alloc_request(1, 1, 4), retry);
  EXPECT_EQ(retry.status, first.status);
  EXPECT_EQ(retry.nodes, first.nodes);
  EXPECT_EQ(retry.cost, first.cost);
  EXPECT_EQ(service.state().job_count(), 1u) << "no double allocation";
  EXPECT_EQ(service.counters().idempotent_hits, 1u);

  // A release retried after the connection 'broke' must not report
  // kUnknownJob for its own job.
  service.handle(release_request(2, 1), first);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  service.handle(release_request(2, 1), retry);
  EXPECT_EQ(retry.status, ServeStatus::kOk);
  EXPECT_EQ(retry.freed, first.freed);
  EXPECT_EQ(service.counters().idempotent_hits, 2u);

  // kNoFit outcomes are remembered too (the answer, not the attempt).
  service.handle(alloc_request(3, 7, 1024), first);
  ASSERT_EQ(first.status, ServeStatus::kNoFit);
  service.handle(alloc_request(3, 7, 1024), retry);
  EXPECT_EQ(retry.status, ServeStatus::kNoFit);
  EXPECT_EQ(service.counters().no_fit, 1u) << "counted once, replayed once";
}

TEST(AllocatorService, IdempotencyWindowEvictsFifo) {
  const Tree tree = make_two_level_tree(4, 8);
  ServiceOptions options = quiet_options();
  options.idempotency_window = 2;
  AllocatorService service(tree, options);
  Reply reply;

  service.handle(alloc_request(1, 1, 2), reply);
  service.handle(alloc_request(2, 2, 2), reply);
  service.handle(alloc_request(3, 3, 2), reply);  // evicts req 1

  // Req 1 fell out of the window: the retry is treated as a fresh request
  // and sees the duplicate-job guard instead of the stored reply.
  service.handle(alloc_request(1, 1, 2), reply);
  EXPECT_EQ(reply.status, ServeStatus::kDuplicateJob);
  EXPECT_EQ(service.counters().idempotent_hits, 0u);

  // Req 3 is still inside the window.
  service.handle(alloc_request(3, 3, 2), reply);
  EXPECT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(service.counters().idempotent_hits, 1u);
}

TEST(AllocatorService, QueryReportsCountersAndOccupancy) {
  const Tree tree = make_two_level_tree(4, 8);
  AllocatorService service(tree, quiet_options());
  Reply reply;

  service.handle(alloc_request(1, 1, 4), reply);
  service.handle(alloc_request(2, 2, 8), reply);
  service.handle(release_request(3, 1), reply);
  service.handle(alloc_request(4, 9, 1024), reply);  // no fit

  Request query;
  query.type = MsgType::kQuery;
  query.req_id = 5;
  service.handle(query, reply);
  EXPECT_EQ(reply.type, MsgType::kQueryReply);
  EXPECT_EQ(reply.total_nodes, 32u);
  EXPECT_EQ(reply.free_nodes, 24u);
  EXPECT_EQ(reply.running_jobs, 1u);
  EXPECT_EQ(reply.allocs, 2u);
  EXPECT_EQ(reply.releases, 1u);
  EXPECT_EQ(reply.no_fit, 1u);
  EXPECT_EQ(reply.served, 4u) << "query itself not yet counted";
}

TEST(AllocatorService, ReplayIsDeterministic) {
  // Same stream, two fresh services -> byte-identical canonical logs
  // (the restart-determinism half of the kill test, without the daemon).
  const Tree tree = make_two_level_tree(4, 8);
  LoadSpec spec;
  spec.requests = 400;
  const LoadStream stream = build_stream(spec, tree.node_count());
  const ServiceOptions options = quiet_options();
  const std::vector<std::string> a = reference_log(stream, tree, options);
  const std::vector<std::string> b = reference_log(stream, tree, options);
  ASSERT_EQ(a.size(), stream.requests.size());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace commsched::serve
