// Wire framing + protocol codec: round-trip every message type, then the
// adversarial cases — truncated, torn, oversized, trailing and garbage
// frames must come back as clean error codes with no corruption of the
// output structs' invariants (run under ASan/UBSan in the sanitizer
// matrix; the server path gets a TSan leg via server_diff_test).
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "util/wire.hpp"

namespace commsched::serve {
namespace {

// Encode, peel the single frame, decode. Expects a full round trip.
Request request_round_trip(const Request& in) {
  std::vector<std::uint8_t> bytes;
  encode_request(in, bytes);
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  EXPECT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
  EXPECT_EQ(offset, bytes.size());
  Request out;
  EXPECT_EQ(decode_request(payload, out), DecodeResult::kOk);
  return out;
}

Reply reply_round_trip(const Reply& in) {
  std::vector<std::uint8_t> bytes;
  encode_reply(in, bytes);
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  EXPECT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
  Reply out;
  EXPECT_EQ(decode_reply(payload, out), DecodeResult::kOk);
  return out;
}

TEST(Wire, PrimitivesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  WireWriter w(bytes);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, ReaderUnderflowIsSticky) {
  const std::vector<std::uint8_t> bytes{1, 2};
  WireReader r(bytes);
  EXPECT_EQ(r.u32(), 0u);  // only 2 bytes available
  EXPECT_FALSE(r.ok());
  // Still failed after more (otherwise valid) reads.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Protocol, AllocRequestRoundTrip) {
  Request in;
  in.type = MsgType::kAlloc;
  in.req_id = 0xfeedfacecafeULL;
  in.job = 123456789;
  in.num_nodes = 64;
  in.allocator = 6;  // sa
  in.comm_intensive = true;
  in.io_intensive = true;
  in.pattern = Pattern::kPairwiseAlltoall;
  in.msize = 1048576.5;
  in.comm_fraction = 0.75;
  in.io_fraction = 0.125;
  in.deadline_ms = 250;
  const Request out = request_round_trip(in);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.req_id, in.req_id);
  EXPECT_EQ(out.job, in.job);
  EXPECT_EQ(out.num_nodes, in.num_nodes);
  EXPECT_EQ(out.allocator, in.allocator);
  EXPECT_EQ(out.comm_intensive, in.comm_intensive);
  EXPECT_EQ(out.io_intensive, in.io_intensive);
  EXPECT_EQ(out.pattern, in.pattern);
  EXPECT_EQ(out.msize, in.msize);
  EXPECT_EQ(out.comm_fraction, in.comm_fraction);
  EXPECT_EQ(out.io_fraction, in.io_fraction);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
}

TEST(Protocol, OtherRequestTypesRoundTrip) {
  for (const MsgType type :
       {MsgType::kHello, MsgType::kRelease, MsgType::kQuery,
        MsgType::kDrain}) {
    Request in;
    in.type = type;
    in.req_id = 77;
    in.job = 3141;
    in.deadline_ms = 9;
    const Request out = request_round_trip(in);
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.req_id, 77u);
    if (type == MsgType::kRelease) {
      EXPECT_EQ(out.job, 3141);
      EXPECT_EQ(out.deadline_ms, 9u);
    }
    if (type == MsgType::kHello) {
      EXPECT_EQ(out.version, kProtocolVersion);
    }
  }
}

TEST(Protocol, AllocReplyRoundTrip) {
  Reply in;
  in.type = MsgType::kAllocReply;
  in.req_id = 99;
  in.status = ServeStatus::kOk;
  in.cost = 12.625;
  in.nodes = {5, 17, 255, 1023};
  const Reply out = reply_round_trip(in);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.req_id, in.req_id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.cost, in.cost);
  EXPECT_EQ(out.nodes, in.nodes);
}

TEST(Protocol, OtherReplyTypesRoundTrip) {
  Reply hello;
  hello.type = MsgType::kHelloAck;
  hello.req_id = 1;
  EXPECT_EQ(reply_round_trip(hello).version, kProtocolVersion);

  Reply release;
  release.type = MsgType::kReleaseReply;
  release.req_id = 2;
  release.freed = 32;
  EXPECT_EQ(reply_round_trip(release).freed, 32u);

  Reply query;
  query.type = MsgType::kQueryReply;
  query.req_id = 3;
  query.total_nodes = 512;
  query.free_nodes = 100;
  query.running_jobs = 7;
  query.served = 1000;
  query.allocs = 600;
  query.releases = 390;
  query.no_fit = 4;
  query.idempotent_hits = 3;
  query.bad_requests = 2;
  query.rejected = 1;
  query.timeouts = 5;
  const Reply q = reply_round_trip(query);
  EXPECT_EQ(q.total_nodes, 512u);
  EXPECT_EQ(q.free_nodes, 100u);
  EXPECT_EQ(q.running_jobs, 7u);
  EXPECT_EQ(q.served, 1000u);
  EXPECT_EQ(q.rejected, 1u);
  EXPECT_EQ(q.timeouts, 5u);

  for (const MsgType type : {MsgType::kDrainReply, MsgType::kErrorReply}) {
    Reply in;
    in.type = type;
    in.req_id = 4;
    in.status = ServeStatus::kDraining;
    const Reply out = reply_round_trip(in);
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.status, ServeStatus::kDraining);
  }
}

TEST(Protocol, TornFrameNeedsMore) {
  Request req;
  req.type = MsgType::kAlloc;
  req.req_id = 5;
  req.job = 1;
  req.num_nodes = 2;
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  // Every strict prefix is kNeedMore, never an error, never a message.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    std::size_t offset = 0;
    std::span<const std::uint8_t> payload;
    EXPECT_EQ(peel_frame(prefix, offset, payload), DecodeResult::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Protocol, TruncatedPayloadIsError) {
  Request req;
  req.type = MsgType::kAlloc;
  req.req_id = 6;
  req.job = 1;
  req.num_nodes = 2;
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  // Shrink the payload by 4 bytes and patch the length prefix: the frame
  // is complete but a field ends early.
  bytes.resize(bytes.size() - 4);
  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size() - 4);
  bytes[0] = static_cast<std::uint8_t>(len);
  bytes[1] = static_cast<std::uint8_t>(len >> 8);
  bytes[2] = static_cast<std::uint8_t>(len >> 16);
  bytes[3] = static_cast<std::uint8_t>(len >> 24);
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
  Request out;
  EXPECT_EQ(decode_request(payload, out), DecodeResult::kTruncated);
}

TEST(Protocol, OversizedFrameIsFatal) {
  std::vector<std::uint8_t> bytes(8, 0);
  const std::uint32_t len = static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  bytes[0] = static_cast<std::uint8_t>(len);
  bytes[1] = static_cast<std::uint8_t>(len >> 8);
  bytes[2] = static_cast<std::uint8_t>(len >> 16);
  bytes[3] = static_cast<std::uint8_t>(len >> 24);
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  EXPECT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOversized);
  EXPECT_EQ(offset, 0u);
}

TEST(Protocol, GarbageTypeAndValuesAreErrors) {
  // Unknown message type.
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u8(99);
  w.u64(1);
  Request out;
  EXPECT_EQ(decode_request(payload, out), DecodeResult::kBadType);

  // A reply type arriving where a request is expected.
  payload.clear();
  w.u8(static_cast<std::uint8_t>(MsgType::kAllocReply));
  w.u64(1);
  EXPECT_EQ(decode_request(payload, out), DecodeResult::kBadType);

  // Out-of-domain pattern byte inside a well-formed alloc frame.
  Request req;
  req.type = MsgType::kAlloc;
  req.req_id = 7;
  req.job = 1;
  req.num_nodes = 2;
  std::vector<std::uint8_t> frame;
  encode_request(req, frame);
  // payload layout: u8 type, u64 req_id, i64 job, u32 nodes, u8 allocator,
  // u8 flags, u8 pattern -> pattern byte at payload offset 23.
  frame[4 + 23] = 200;
  std::size_t offset = 0;
  std::span<const std::uint8_t> peeled;
  ASSERT_EQ(peel_frame(frame, offset, peeled), DecodeResult::kOk);
  EXPECT_EQ(decode_request(peeled, out), DecodeResult::kBadValue);
  EXPECT_EQ(out.req_id, 7u) << "req_id must decode so the error is answerable";

  // Unknown flag bits.
  frame.clear();
  encode_request(req, frame);
  frame[4 + 22] = 0xf0;
  offset = 0;
  ASSERT_EQ(peel_frame(frame, offset, peeled), DecodeResult::kOk);
  EXPECT_EQ(decode_request(peeled, out), DecodeResult::kBadValue);
}

TEST(Protocol, TrailingBytesAreErrors) {
  Request req;
  req.type = MsgType::kQuery;
  req.req_id = 8;
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  bytes.push_back(0x5a);  // extra payload byte
  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size() - 4);
  bytes[0] = static_cast<std::uint8_t>(len);
  bytes[1] = static_cast<std::uint8_t>(len >> 8);
  bytes[2] = static_cast<std::uint8_t>(len >> 16);
  bytes[3] = static_cast<std::uint8_t>(len >> 24);
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
  Request out;
  EXPECT_EQ(decode_request(payload, out), DecodeResult::kTrailing);
}

TEST(Protocol, AllocReplyCountBeyondPayloadIsTruncated) {
  // A corrupt node count must not drive a huge reserve or out-of-bounds
  // reads: the decoder checks count against the remaining payload first.
  Reply reply;
  reply.type = MsgType::kAllocReply;
  reply.req_id = 9;
  reply.nodes = {1, 2, 3};
  std::vector<std::uint8_t> bytes;
  encode_reply(reply, bytes);
  // count field: u8 type, u64 req_id, u8 status, f64 cost -> offset 18.
  bytes[4 + 18] = 0xff;
  bytes[4 + 19] = 0xff;
  bytes[4 + 20] = 0xff;
  bytes[4 + 21] = 0x7f;
  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
  Reply out;
  EXPECT_EQ(decode_reply(payload, out), DecodeResult::kTruncated);
}

TEST(Protocol, MultipleFramesPeelInSequence) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 5; ++i) {
    Request req;
    req.type = MsgType::kRelease;
    req.req_id = static_cast<std::uint64_t>(i + 1);
    req.job = i;
    encode_request(req, bytes);
  }
  std::size_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kOk);
    Request out;
    ASSERT_EQ(decode_request(payload, out), DecodeResult::kOk);
    EXPECT_EQ(out.req_id, static_cast<std::uint64_t>(i + 1));
  }
  std::span<const std::uint8_t> payload;
  EXPECT_EQ(peel_frame(bytes, offset, payload), DecodeResult::kNeedMore);
}

}  // namespace
}  // namespace commsched::serve
