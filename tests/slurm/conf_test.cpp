#include "slurm/conf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace commsched {
namespace {

SlurmConf parse(const std::string& text) {
  std::istringstream in(text);
  return parse_slurm_conf(in);
}

TEST(SlurmConfTest, Defaults) {
  const SlurmConf conf = parse("");
  EXPECT_TRUE(conf.sched.easy_backfill);
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kDefault);
  EXPECT_EQ(conf.sched.queue_policy, QueuePolicy::kFifo);
  EXPECT_TRUE(conf.topology_aware);
  EXPECT_FALSE(conf.sched.enforce_walltime);
}

TEST(SlurmConfTest, PaperConfiguration) {
  // §3.1/§5.2: FIFO + backfill, select/linear, topology/tree, job-aware on.
  const SlurmConf conf = parse(
      "SchedulerType=sched/backfill\n"
      "SelectType=select/linear\n"
      "TopologyPlugin=topology/tree\n"
      "JobAware=adaptive\n");
  EXPECT_TRUE(conf.sched.easy_backfill);
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kAdaptive);
  EXPECT_TRUE(conf.topology_aware);
}

TEST(SlurmConfTest, BuiltinSchedulerDisablesBackfill) {
  EXPECT_FALSE(parse("SchedulerType=sched/builtin\n").sched.easy_backfill);
}

TEST(SlurmConfTest, PriorityPlugins) {
  EXPECT_EQ(parse("PriorityType=priority/sjf\n").sched.queue_policy,
            QueuePolicy::kShortestJobFirst);
  EXPECT_EQ(parse("PriorityType=priority/smallest\n").sched.queue_policy,
            QueuePolicy::kSmallestJobFirst);
  EXPECT_EQ(parse("PriorityType=priority/fifo\n").sched.queue_policy,
            QueuePolicy::kFifo);
}

TEST(SlurmConfTest, AllAllocatorValues) {
  for (const char* name :
       {"default", "greedy", "balanced", "adaptive", "exclusive"}) {
    const SlurmConf conf = parse(std::string("JobAware=") + name + "\n");
    EXPECT_STREQ(allocator_kind_name(conf.sched.allocator), name);
  }
}

TEST(SlurmConfTest, NumericAndBooleanKnobs) {
  const SlurmConf conf = parse(
      "BackfillDepth=50\n"
      "EnforceWallTime=yes\n");
  EXPECT_EQ(conf.sched.backfill_depth, 50);
  EXPECT_TRUE(conf.sched.enforce_walltime);
}

TEST(SlurmConfTest, CommentsAndUnknownKeysIgnored) {
  const SlurmConf conf = parse(
      "# production config\n"
      "ClusterName=hpc2010   # unmodeled key\n"
      "JobAware=balanced  # job-aware on\n");
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kBalanced);
}

TEST(SlurmConfTest, Rejections) {
  EXPECT_THROW(parse("SchedulerType=sched/unknown\n"), ParseError);
  EXPECT_THROW(parse("SelectType=select/cons_res\n"), ParseError);
  EXPECT_THROW(parse("TopologyPlugin=topology/3d_torus\n"), ParseError);
  EXPECT_THROW(parse("PriorityType=priority/multifactor\n"), ParseError);
  EXPECT_THROW(parse("JobAware=psychic\n"), ParseError);
  EXPECT_THROW(parse("BackfillDepth=0\n"), ParseError);
  EXPECT_THROW(parse("EnforceWallTime=maybe\n"), ParseError);
  EXPECT_THROW(parse("not a key value line\n"), ParseError);
}

TEST(SlurmConfTest, WriteThenParseRoundTrips) {
  SlurmConf conf;
  conf.sched.easy_backfill = false;
  conf.sched.allocator = AllocatorKind::kBalanced;
  conf.sched.queue_policy = QueuePolicy::kShortestJobFirst;
  conf.sched.backfill_depth = 77;
  conf.sched.enforce_walltime = true;
  conf.topology_aware = false;
  const SlurmConf parsed = parse(write_slurm_conf(conf));
  EXPECT_EQ(parsed.sched.easy_backfill, conf.sched.easy_backfill);
  EXPECT_EQ(parsed.sched.allocator, conf.sched.allocator);
  EXPECT_EQ(parsed.sched.queue_policy, conf.sched.queue_policy);
  EXPECT_EQ(parsed.sched.backfill_depth, conf.sched.backfill_depth);
  EXPECT_EQ(parsed.sched.enforce_walltime, conf.sched.enforce_walltime);
  EXPECT_EQ(parsed.topology_aware, conf.topology_aware);
}

}  // namespace
}  // namespace commsched
