#include "slurm/conf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace commsched {
namespace {

SlurmConf parse(const std::string& text) {
  std::istringstream in(text);
  return parse_slurm_conf(in);
}

TEST(SlurmConfTest, Defaults) {
  const SlurmConf conf = parse("");
  EXPECT_TRUE(conf.sched.easy_backfill);
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kDefault);
  EXPECT_EQ(conf.sched.queue_policy, QueuePolicy::kFifo);
  EXPECT_TRUE(conf.topology_aware);
  EXPECT_FALSE(conf.sched.enforce_walltime);
}

TEST(SlurmConfTest, PaperConfiguration) {
  // §3.1/§5.2: FIFO + backfill, select/linear, topology/tree, job-aware on.
  const SlurmConf conf = parse(
      "SchedulerType=sched/backfill\n"
      "SelectType=select/linear\n"
      "TopologyPlugin=topology/tree\n"
      "JobAware=adaptive\n");
  EXPECT_TRUE(conf.sched.easy_backfill);
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kAdaptive);
  EXPECT_TRUE(conf.topology_aware);
}

TEST(SlurmConfTest, BuiltinSchedulerDisablesBackfill) {
  EXPECT_FALSE(parse("SchedulerType=sched/builtin\n").sched.easy_backfill);
}

TEST(SlurmConfTest, PriorityPlugins) {
  EXPECT_EQ(parse("PriorityType=priority/sjf\n").sched.queue_policy,
            QueuePolicy::kShortestJobFirst);
  EXPECT_EQ(parse("PriorityType=priority/smallest\n").sched.queue_policy,
            QueuePolicy::kSmallestJobFirst);
  EXPECT_EQ(parse("PriorityType=priority/fifo\n").sched.queue_policy,
            QueuePolicy::kFifo);
}

TEST(SlurmConfTest, AllAllocatorValues) {
  for (const char* name :
       {"default", "greedy", "balanced", "adaptive", "exclusive", "io_aware",
        "sa"}) {
    const SlurmConf conf = parse(std::string("JobAware=") + name + "\n");
    EXPECT_STREQ(allocator_kind_name(conf.sched.allocator), name);
  }
}

TEST(SlurmConfTest, NumericAndBooleanKnobs) {
  const SlurmConf conf = parse(
      "BackfillDepth=50\n"
      "EnforceWallTime=yes\n");
  EXPECT_EQ(conf.sched.backfill_depth, 50);
  EXPECT_TRUE(conf.sched.enforce_walltime);
}

TEST(SlurmConfTest, CommentsAndUnknownKeysIgnored) {
  const SlurmConf conf = parse(
      "# production config\n"
      "ClusterName=hpc2010   # unmodeled key\n"
      "JobAware=balanced  # job-aware on\n");
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kBalanced);
}

TEST(SlurmConfTest, Rejections) {
  EXPECT_THROW(parse("SchedulerType=sched/unknown\n"), ParseError);
  EXPECT_THROW(parse("SelectType=select/cons_res\n"), ParseError);
  EXPECT_THROW(parse("TopologyPlugin=topology/3d_torus\n"), ParseError);
  EXPECT_THROW(parse("PriorityType=priority/multifactor\n"), ParseError);
  EXPECT_THROW(parse("JobAware=psychic\n"), ParseError);
  EXPECT_THROW(parse("BackfillDepth=0\n"), ParseError);
  EXPECT_THROW(parse("EnforceWallTime=maybe\n"), ParseError);
  EXPECT_THROW(parse("not a key value line\n"), ParseError);
}

TEST(SlurmConfTest, SelectTypeParametersConfigureTheSaAllocator) {
  const SlurmConf conf = parse(
      "JobAware=sa\n"
      "SelectTypeParameters=sa_budget=5000, sa_seed=7, sa_t0=0.25,"
      "sa_cooling=0.9,sa_patience=100,sa_proposal=uniform,sa_verify=16\n");
  EXPECT_EQ(conf.sched.allocator, AllocatorKind::kSa);
  EXPECT_EQ(conf.sched.sa.budget, 5000);
  EXPECT_EQ(conf.sched.sa.seed, 7u);
  EXPECT_EQ(conf.sched.sa.init_temp_frac, 0.25);
  EXPECT_EQ(conf.sched.sa.cooling, 0.9);
  EXPECT_EQ(conf.sched.sa.patience, 100);
  EXPECT_EQ(conf.sched.sa.proposal, SaProposalKind::kUniform);
  EXPECT_EQ(conf.sched.sa.verify_stride, 16);

  // The bare `sa` token alone selects the policy (knobs stay default).
  const SlurmConf bare = parse("SelectTypeParameters=sa\n");
  EXPECT_EQ(bare.sched.allocator, AllocatorKind::kSa);
  EXPECT_EQ(bare.sched.sa.budget, SaOptions{}.budget);
}

TEST(SlurmConfTest, SelectTypeParametersRejections) {
  EXPECT_THROW(parse("SelectTypeParameters=cr_core\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_budget=lots\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_cooling=0\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_cooling=1.5\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_t0=-0.1\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_patience=-1\n"), ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_proposal=anneal\n"),
               ParseError);
  EXPECT_THROW(parse("SelectTypeParameters=sa_verify=-2\n"), ParseError);
  // Unknown-token errors teach the valid vocabulary.
  try {
    parse("SelectTypeParameters=cr_core\n");
    FAIL() << "unknown token must throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("sa_proposal=uniform|locality"),
              std::string::npos);
  }
}

TEST(SlurmConfTest, UnknownJobAwareErrorListsRegisteredPolicies) {
  try {
    parse("JobAware=psychic\n");
    FAIL() << "unknown policy must throw";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(allocator_kind_names()), std::string::npos)
        << what;
    EXPECT_NE(what.find("sa"), std::string::npos);
  }
}

TEST(SlurmConfTest, SaKnobsRoundTripThroughWrite) {
  SlurmConf conf;
  conf.sched.allocator = AllocatorKind::kSa;
  conf.sched.sa.budget = 4321;
  conf.sched.sa.seed = 99;
  conf.sched.sa.init_temp_frac = 0.125;
  conf.sched.sa.cooling = 0.875;
  conf.sched.sa.patience = 33;
  conf.sched.sa.proposal = SaProposalKind::kUniform;
  conf.sched.sa.verify_stride = 8;
  const SlurmConf parsed = parse(write_slurm_conf(conf));
  EXPECT_EQ(parsed.sched.allocator, AllocatorKind::kSa);
  EXPECT_EQ(parsed.sched.sa.budget, conf.sched.sa.budget);
  EXPECT_EQ(parsed.sched.sa.seed, conf.sched.sa.seed);
  EXPECT_EQ(parsed.sched.sa.init_temp_frac, conf.sched.sa.init_temp_frac);
  EXPECT_EQ(parsed.sched.sa.cooling, conf.sched.sa.cooling);
  EXPECT_EQ(parsed.sched.sa.patience, conf.sched.sa.patience);
  EXPECT_EQ(parsed.sched.sa.proposal, conf.sched.sa.proposal);
  EXPECT_EQ(parsed.sched.sa.verify_stride, conf.sched.sa.verify_stride);

  // Defaults stay silent: a default-constructed conf emits no
  // SelectTypeParameters line at all.
  EXPECT_EQ(write_slurm_conf(SlurmConf{}).find("SelectTypeParameters"),
            std::string::npos);
}

TEST(SlurmConfTest, AllocdParametersParse) {
  const SlurmConf conf = parse(
      "AllocdParameters=socket=/run/allocd.sock,threads=4,queue=256,"
      "batch=8,deadline_ms=50,idle_ms=1000,write_ms=250\n");
  EXPECT_EQ(conf.serve.socket_path, "/run/allocd.sock");
  EXPECT_EQ(conf.serve.threads, 4);
  EXPECT_EQ(conf.serve.queue_depth, 256);
  EXPECT_EQ(conf.serve.batch, 8);
  EXPECT_EQ(conf.serve.default_deadline_ms, 50);
  EXPECT_EQ(conf.serve.idle_timeout_ms, 1000);
  EXPECT_EQ(conf.serve.write_timeout_ms, 250);

  // Defaults without the key, and partial specs keep the rest default.
  const SlurmConf bare = parse("");
  EXPECT_EQ(bare.serve.queue_depth, ServeConf{}.queue_depth);
  const SlurmConf partial = parse("AllocdParameters=threads=2\n");
  EXPECT_EQ(partial.serve.threads, 2);
  EXPECT_EQ(partial.serve.queue_depth, ServeConf{}.queue_depth);
  EXPECT_EQ(partial.serve.socket_path, ServeConf{}.socket_path);
}

TEST(SlurmConfTest, AllocdParametersRejections) {
  EXPECT_THROW(parse("AllocdParameters=socket=\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=threads=-1\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=queue=0\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=batch=none\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=deadline_ms=-5\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=idle_ms=soon\n"), ParseError);
  EXPECT_THROW(parse("AllocdParameters=write_ms=-1\n"), ParseError);
  // Unknown-token errors teach the valid vocabulary.
  try {
    parse("AllocdParameters=turbo=1\n");
    FAIL() << "unknown token must throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("socket="), std::string::npos);
  }
}

TEST(SlurmConfTest, AllocdParametersRoundTripThroughWrite) {
  SlurmConf conf;
  conf.serve.socket_path = "/tmp/allocd.sock";
  conf.serve.threads = 3;
  conf.serve.queue_depth = 2048;
  conf.serve.batch = 32;
  conf.serve.default_deadline_ms = 10;
  conf.serve.idle_timeout_ms = 60000;
  conf.serve.write_timeout_ms = 100;
  const SlurmConf parsed = parse(write_slurm_conf(conf));
  EXPECT_EQ(parsed.serve.socket_path, conf.serve.socket_path);
  EXPECT_EQ(parsed.serve.threads, conf.serve.threads);
  EXPECT_EQ(parsed.serve.queue_depth, conf.serve.queue_depth);
  EXPECT_EQ(parsed.serve.batch, conf.serve.batch);
  EXPECT_EQ(parsed.serve.default_deadline_ms, conf.serve.default_deadline_ms);
  EXPECT_EQ(parsed.serve.idle_timeout_ms, conf.serve.idle_timeout_ms);
  EXPECT_EQ(parsed.serve.write_timeout_ms, conf.serve.write_timeout_ms);

  // Defaults stay silent: no AllocdParameters line for a default conf.
  EXPECT_EQ(write_slurm_conf(SlurmConf{}).find("AllocdParameters"),
            std::string::npos);
}

TEST(SlurmConfTest, WriteThenParseRoundTrips) {
  SlurmConf conf;
  conf.sched.easy_backfill = false;
  conf.sched.allocator = AllocatorKind::kBalanced;
  conf.sched.queue_policy = QueuePolicy::kShortestJobFirst;
  conf.sched.backfill_depth = 77;
  conf.sched.enforce_walltime = true;
  conf.topology_aware = false;
  const SlurmConf parsed = parse(write_slurm_conf(conf));
  EXPECT_EQ(parsed.sched.easy_backfill, conf.sched.easy_backfill);
  EXPECT_EQ(parsed.sched.allocator, conf.sched.allocator);
  EXPECT_EQ(parsed.sched.queue_policy, conf.sched.queue_policy);
  EXPECT_EQ(parsed.sched.backfill_depth, conf.sched.backfill_depth);
  EXPECT_EQ(parsed.sched.enforce_walltime, conf.sched.enforce_walltime);
  EXPECT_EQ(parsed.topology_aware, conf.topology_aware);
}

}  // namespace
}  // namespace commsched
