#include "slurm/duration.hpp"

#include <gtest/gtest.h>

namespace commsched {
namespace {

TEST(SlurmDurationTest, MinutesOnly) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("90"), 5400.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("1"), 60.0);
}

TEST(SlurmDurationTest, MinutesSeconds) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("10:30"), 630.0);
}

TEST(SlurmDurationTest, HoursMinutesSeconds) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("01:30:00"), 5400.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("12:00:01"), 43201.0);
}

TEST(SlurmDurationTest, DaysForms) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("1-0"), 86400.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("1-12"), 86400.0 + 12 * 3600.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("2-03:30"),
                   2 * 86400.0 + 3 * 3600.0 + 30 * 60.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("1-00:00:30"), 86430.0);
}

TEST(SlurmDurationTest, Unlimited) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("UNLIMITED"), 365.0 * 86400.0);
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("INFINITE"), 365.0 * 86400.0);
}

TEST(SlurmDurationTest, WhitespaceTolerant) {
  EXPECT_DOUBLE_EQ(*parse_slurm_duration("  30  "), 1800.0);
}

TEST(SlurmDurationTest, RejectsMalformed) {
  EXPECT_FALSE(parse_slurm_duration("").has_value());
  EXPECT_FALSE(parse_slurm_duration("abc").has_value());
  EXPECT_FALSE(parse_slurm_duration("1:2:3:4").has_value());
  EXPECT_FALSE(parse_slurm_duration("-5").has_value());
  EXPECT_FALSE(parse_slurm_duration("1-").has_value());
  EXPECT_FALSE(parse_slurm_duration("0").has_value());  // non-positive
  EXPECT_FALSE(parse_slurm_duration("1:xx").has_value());
}

TEST(SlurmDurationTest, FormatCanonical) {
  EXPECT_EQ(format_slurm_duration(5400.0), "01:30:00");
  EXPECT_EQ(format_slurm_duration(86430.0), "1-00:00:30");
  EXPECT_EQ(format_slurm_duration(59.0), "00:00:59");
}

class DurationRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DurationRoundTrip, FormatThenParseIsIdentity) {
  const double seconds = GetParam();
  const auto parsed = parse_slurm_duration(format_slurm_duration(seconds));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(*parsed, seconds);
}

INSTANTIATE_TEST_SUITE_P(Durations, DurationRoundTrip,
                         ::testing::Values(60.0, 90.0, 3600.0, 5400.0,
                                           86400.0, 90061.0, 31 * 86400.0));

}  // namespace
}  // namespace commsched
