#include "slurm/sbatch.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace commsched {
namespace {

SbatchJob parse(const std::string& text) {
  std::istringstream in(text);
  return parse_sbatch_script(in);
}

constexpr const char* kFullScript = R"(#!/bin/bash
#SBATCH --job-name=lammps-run
#SBATCH --nodes=64
#SBATCH --time=02:00:00
#SBATCH --comment=comm:RHVD:0.6:2097152
#SBATCH --partition=batch

srun ./lammps -in in.lj
)";

TEST(SbatchTest, ParsesFullScript) {
  const SbatchJob job = parse(kFullScript);
  EXPECT_EQ(job.name, "lammps-run");
  EXPECT_EQ(job.record.num_nodes, 64);
  EXPECT_DOUBLE_EQ(job.record.walltime, 7200.0);
  EXPECT_TRUE(job.record.comm_intensive);
  EXPECT_EQ(job.record.pattern, Pattern::kRecursiveHalvingVD);
  EXPECT_DOUBLE_EQ(job.record.comm_fraction, 0.6);
  EXPECT_DOUBLE_EQ(job.record.msize, 2097152.0);
}

TEST(SbatchTest, ShortFlags) {
  const SbatchJob job = parse(
      "#!/bin/sh\n#SBATCH -J quick\n#SBATCH -N 4\n#SBATCH -t 30\n");
  EXPECT_EQ(job.name, "quick");
  EXPECT_EQ(job.record.num_nodes, 4);
  EXPECT_DOUBLE_EQ(job.record.walltime, 1800.0);
}

TEST(SbatchTest, DefaultsWhenOnlyNodesGiven) {
  const SbatchJob job = parse("#SBATCH --nodes=8\n");
  EXPECT_EQ(job.name, "job");
  EXPECT_DOUBLE_EQ(job.record.walltime, 3600.0);  // sbatch default
  EXPECT_FALSE(job.record.comm_intensive);
  EXPECT_DOUBLE_EQ(job.record.submit_time, 0.0);
}

TEST(SbatchTest, CommCommentDefaultsFraction) {
  const SbatchJob job =
      parse("#SBATCH --nodes=2\n#SBATCH --comment=comm:Binomial\n");
  EXPECT_TRUE(job.record.comm_intensive);
  EXPECT_EQ(job.record.pattern, Pattern::kBinomial);
  EXPECT_DOUBLE_EQ(job.record.comm_fraction, 0.5);
}

TEST(SbatchTest, ComputeComment) {
  const SbatchJob job =
      parse("#SBATCH --nodes=2\n#SBATCH --comment=compute\n");
  EXPECT_FALSE(job.record.comm_intensive);
  EXPECT_DOUBLE_EQ(job.record.comm_fraction, 0.0);
}

TEST(SbatchTest, UnrelatedCommentIgnored) {
  const SbatchJob job =
      parse("#SBATCH --nodes=2\n#SBATCH --comment=weekly-regression\n");
  EXPECT_FALSE(job.record.comm_intensive);
}

TEST(SbatchTest, MinMaxNodesUsesMinimum) {
  const SbatchJob job = parse("#SBATCH --nodes=16-32\n");
  EXPECT_EQ(job.record.num_nodes, 16);
}

TEST(SbatchTest, BeginOffset) {
  const SbatchJob job =
      parse("#SBATCH --nodes=1\n#SBATCH --begin=now+300\n");
  EXPECT_DOUBLE_EQ(job.record.submit_time, 300.0);
}

TEST(SbatchTest, DirectivesAfterScriptBodyIgnored) {
  const SbatchJob job = parse(
      "#SBATCH --nodes=4\n"
      "echo hello\n"
      "#SBATCH --nodes=999\n");
  EXPECT_EQ(job.record.num_nodes, 4);
}

TEST(SbatchTest, UnknownLongOptionsIgnored) {
  const SbatchJob job = parse(
      "#SBATCH --nodes=4\n#SBATCH --mem=64G\n#SBATCH --exclusive\n");
  EXPECT_EQ(job.record.num_nodes, 4);
}

TEST(SbatchTest, Rejections) {
  EXPECT_THROW(parse("echo no directives\n"), ParseError);       // no nodes
  EXPECT_THROW(parse("#SBATCH --nodes=0\n"), ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=x\n"), ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --time=zzz\n"), ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --comment=comm\n"),
               ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --comment=comm:FOO\n"),
               ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --comment=comm:RD:2.0\n"),
               ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --begin=-3\n"), ParseError);
}

TEST(SbatchTest, IoClauseAloneAndCombined) {
  const SbatchJob io_only =
      parse("#SBATCH --nodes=4\n#SBATCH --comment=io:0.4\n");
  EXPECT_FALSE(io_only.record.comm_intensive);
  EXPECT_TRUE(io_only.record.io_intensive);
  EXPECT_DOUBLE_EQ(io_only.record.io_fraction, 0.4);

  const SbatchJob both =
      parse("#SBATCH --nodes=4\n#SBATCH --comment=comm:RHVD:0.5,io:0.3\n");
  EXPECT_TRUE(both.record.comm_intensive);
  EXPECT_TRUE(both.record.io_intensive);
  EXPECT_DOUBLE_EQ(both.record.comm_fraction, 0.5);
  EXPECT_DOUBLE_EQ(both.record.io_fraction, 0.3);
}

TEST(SbatchTest, IoClauseRejections) {
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --comment=io\n"),
               ParseError);
  EXPECT_THROW(parse("#SBATCH --nodes=2\n#SBATCH --comment=io:1.5\n"),
               ParseError);
  // Overfull fractions.
  EXPECT_THROW(
      parse("#SBATCH --nodes=2\n#SBATCH --comment=comm:RD:0.8,io:0.4\n"),
      ParseError);
}

TEST(SbatchTest, IoRoundTrips) {
  SbatchJob job;
  job.name = "io-heavy";
  job.record.num_nodes = 8;
  job.record.walltime = 600.0;
  job.record.comm_intensive = true;
  job.record.pattern = Pattern::kRecursiveHalvingVD;
  job.record.comm_fraction = 0.5;
  job.record.io_intensive = true;
  job.record.io_fraction = 0.25;
  const SbatchJob parsed = parse(write_sbatch_script(job));
  EXPECT_TRUE(parsed.record.io_intensive);
  EXPECT_DOUBLE_EQ(parsed.record.io_fraction, 0.25);
  EXPECT_DOUBLE_EQ(parsed.record.comm_fraction, 0.5);

  SbatchJob pure_io = job;
  pure_io.record.comm_intensive = false;
  const SbatchJob parsed2 = parse(write_sbatch_script(pure_io));
  EXPECT_FALSE(parsed2.record.comm_intensive);
  EXPECT_TRUE(parsed2.record.io_intensive);
}

TEST(SbatchTest, WriteThenParseRoundTrips) {
  SbatchJob job;
  job.name = "roundtrip";
  job.record.num_nodes = 128;
  job.record.walltime = 5400.0;
  job.record.submit_time = 60.0;
  job.record.comm_intensive = true;
  job.record.pattern = Pattern::kRecursiveDoubling;
  job.record.comm_fraction = 0.75;
  job.record.msize = 4096.0;
  const SbatchJob parsed = parse(write_sbatch_script(job));
  EXPECT_EQ(parsed.name, job.name);
  EXPECT_EQ(parsed.record.num_nodes, job.record.num_nodes);
  EXPECT_DOUBLE_EQ(parsed.record.walltime, job.record.walltime);
  EXPECT_DOUBLE_EQ(parsed.record.submit_time, job.record.submit_time);
  EXPECT_TRUE(parsed.record.comm_intensive);
  EXPECT_EQ(parsed.record.pattern, job.record.pattern);
  EXPECT_DOUBLE_EQ(parsed.record.comm_fraction, job.record.comm_fraction);
  EXPECT_DOUBLE_EQ(parsed.record.msize, job.record.msize);
}

}  // namespace
}  // namespace commsched
