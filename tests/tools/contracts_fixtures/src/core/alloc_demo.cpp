#include <vector>

namespace commsched {

void append_twice(std::vector<int>& out, int v) {
  out.push_back(v);
  out.push_back(v + 1);
}

// hot-path: no-alloc
void hot_entry(std::vector<int>& out, int v) {
  append_twice(out, v);
}

}  // namespace commsched
