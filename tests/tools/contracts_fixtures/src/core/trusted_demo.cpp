#include <vector>

namespace commsched {

// contract-trusted: no-alloc: scratch reuses capacity reserved at startup
void absorb(std::vector<int>& out, int v) { out.push_back(v); }

// The blank padding above the next signature keeps absorb's trust comment
// outside the annotation window — annotations attach to the signature at
// most ANNOTATION_WINDOW lines below them.
//
// hot-path: no-alloc
void hot_trusted_entry(std::vector<int>& out, int v) {
  // contract-trusted: no-alloc: capacity reserved by the caller
  out.push_back(v);
  absorb(out, v);
}

}  // namespace commsched
