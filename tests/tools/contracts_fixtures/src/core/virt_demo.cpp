#include <vector>

namespace commsched {

class Picker {
 public:
  virtual ~Picker() = default;
  virtual void select_into(std::vector<int>& out) const = 0;
};

class ReusingPicker : public Picker {
 public:
  // hot-path: no-alloc
  void select_into(std::vector<int>& out) const override { out.clear(); }
};

class GrowingPicker : public Picker {
 public:
  void select_into(std::vector<int>& out) const override {
    out.push_back(1);
  }
};

// hot-path: no-alloc
void drive(const Picker& p, std::vector<int>& out) { p.select_into(out); }

}  // namespace commsched
