#include <string>
#include <unordered_map>
#include <vector>

namespace commsched {

void collect_names(const std::unordered_map<int, std::string>& table,
                   std::vector<std::string>& out) {
  for (const auto& kv : table) {
    out.push_back(kv.second);
  }
}

}  // namespace commsched
