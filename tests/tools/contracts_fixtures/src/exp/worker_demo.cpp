namespace commsched {

int bump_counter() {
  static int counter = 0;
  ++counter;
  return counter;
}

class Tally {
 public:
  int peek() const { return hits_; }

 private:
  mutable int hits_ = 0;
};

void run_cell(int cell) {
  Tally t;
  bump_counter();
  (void)cell;
  (void)t.peek();
}

}  // namespace commsched
