#include <chrono>

namespace commsched {

double tick_seconds() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace commsched
