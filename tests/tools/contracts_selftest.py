#!/usr/bin/env python3
"""Negative-fixture self-test for the contract analyzer.

tests/tools/contracts_fixtures/ is a miniature repo tree seeded with one
violation per rule family the analyzer enforces (DESIGN.md "Effect
contracts"): a transitive allocation through a helper, a virtual dispatch
to an allocating override, unjustified static and mutable state on the
run_cell worker path, a wall-clock read in src/sched/, an unordered-map
iteration in src/exp/, and a trusted escape at both granularities. The
driver runs analyze.py with --repo-root pointed at the fixture tree and
asserts the exact rule ids, offending functions, call chains and trusted
inventory — plus that --update-baseline makes a re-run exit clean.

Exit 0 on success; nonzero with a description of each mismatch.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO / "tests" / "tools" / "contracts_fixtures"
ANALYZER = REPO / "tools" / "contracts" / "analyze.py"

# (rule, function, chain of qualified names root -> offender). The chain in
# the report carries "name (file:line)" entries; only the names are pinned
# here so the fixture can be reformatted without rewriting the test.
EXPECTED_VIOLATIONS = [
    ("determinism-unordered-iter", "commsched::collect_names",
     ["commsched::collect_names"]),
    ("determinism-wallclock", "commsched::tick_seconds",
     ["commsched::tick_seconds"]),
    ("no-alloc", "commsched::GrowingPicker::select_into",
     ["commsched::drive", "commsched::GrowingPicker::select_into"]),
    ("no-alloc", "commsched::append_twice",
     ["commsched::hot_entry", "commsched::append_twice"]),
    ("no-alloc", "commsched::append_twice",
     ["commsched::hot_entry", "commsched::append_twice"]),
    ("no-alloc-unannotated", "commsched::GrowingPicker::select_into",
     ["commsched::drive", "commsched::GrowingPicker::select_into"]),
    ("no-alloc-unannotated", "commsched::append_twice",
     ["commsched::hot_entry", "commsched::append_twice"]),
    ("thread-safe-mutable", "commsched::Tally::peek",
     ["commsched::run_cell", "commsched::Tally::peek"]),
    ("thread-safe-static", "commsched::bump_counter",
     ["commsched::run_cell", "commsched::bump_counter"]),
]

EXPECTED_TRUSTED = [
    ("no-alloc", "function", "commsched::absorb"),
    ("no-alloc", "fact", "commsched::hot_trusted_entry"),
]

EXPECTED_HOT_ROOTS = [
    "commsched::ReusingPicker::select_into",
    "commsched::drive",
    "commsched::hot_entry",
    "commsched::hot_trusted_entry",
]


def run_analyzer(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(ANALYZER), *args],
                          capture_output=True, text=True)


def chain_names(chain: list[str]) -> list[str]:
    return [entry.split(" (")[0] for entry in chain]


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="contracts_selftest_"))
    failures: list[str] = []
    try:
        report_path = tmp / "report.json"
        proc = run_analyzer("--repo-root", str(FIXTURES),
                            "--output", str(report_path), "--quiet")
        if proc.returncode != 1:
            failures.append(
                f"seeded fixture run exited {proc.returncode}, expected 1 "
                f"(stderr: {proc.stderr.strip()!r})")
        report = json.loads(report_path.read_text())

        actual = sorted((v["rule"], v["function"],
                         tuple(chain_names(v["chain"])))
                        for v in report["violations"])
        expected = sorted((r, f, tuple(c))
                          for r, f, c in EXPECTED_VIOLATIONS)
        for item in expected:
            if item not in actual:
                failures.append(f"missing violation {item}")
        for item in actual:
            if item not in expected:
                failures.append(f"unexpected violation {item}")
        if len(actual) != len(expected):
            failures.append(
                f"{len(actual)} violations reported, expected {len(expected)}")

        trusted = sorted((t["family"], t["granularity"], t["function"])
                         for t in report["trusted"])
        if trusted != sorted(EXPECTED_TRUSTED):
            failures.append(
                f"trusted inventory {trusted} != {sorted(EXPECTED_TRUSTED)}")
        for t in report["trusted"]:
            if not t["reason"]:
                failures.append(f"trusted entry without a reason: {t}")

        if report["roots"]["no-alloc"] != EXPECTED_HOT_ROOTS:
            failures.append(
                f"hot-path roots {report['roots']['no-alloc']} != "
                f"{EXPECTED_HOT_ROOTS}")
        if report["roots"]["thread-safe"] != ["commsched::run_cell"]:
            failures.append(
                f"thread roots {report['roots']['thread-safe']}")

        # Baseline gating: accepting the findings must turn the exit green,
        # and the report must label them as baselined (no new keys).
        baseline = tmp / "baseline.json"
        accept = run_analyzer("--repo-root", str(FIXTURES),
                              "--output", str(report_path),
                              "--baseline", str(baseline),
                              "--update-baseline", "--quiet")
        if accept.returncode != 0:
            failures.append(
                f"--update-baseline run exited {accept.returncode}")
        gated = run_analyzer("--repo-root", str(FIXTURES),
                             "--output", str(report_path),
                             "--baseline", str(baseline), "--quiet")
        if gated.returncode != 0:
            failures.append(
                f"baselined re-run exited {gated.returncode}, expected 0")
        regated = json.loads(report_path.read_text())
        if regated["baseline"]["new"] or regated["baseline"]["stale"]:
            failures.append(
                f"baselined re-run still reports new/stale keys: "
                f"{regated['baseline']}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    for f in failures:
        print(f"contracts_selftest: {f}", file=sys.stderr)
    if not failures:
        print(f"contracts_selftest: ok ({len(EXPECTED_VIOLATIONS)} seeded "
              f"violations and {len(EXPECTED_TRUSTED)} trusted escapes "
              "matched)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
