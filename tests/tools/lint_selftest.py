#!/usr/bin/env python3
"""Self-test for tools/lint.py against known-bad fixtures.

The fixtures under tests/tools/fixtures/ mirror a miniature repo tree
(src/util/, src/core/, ...) with a `.fix` suffix appended so the real
lint run over tests/ skips them (they are deliberately bad). The driver
copies lint.py plus the fixtures into a temporary fake repo root —
lint.py derives REPO_ROOT from its own location, so the copy makes the
fixture tree *the* repo — runs it, and diffs the findings against
`// expect-lint: <rule>[, <rule>...]` markers placed on the exact lines
the rules report at.

Exit 0 on success; nonzero with a diff of missing/unexpected findings.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO / "tests" / "tools" / "fixtures"
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w\-, ]+?)\s*$")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([\w-]+)\]")


def install_fixtures(tmp: Path) -> Counter:
    """Copy lint.py + fixtures (stripping `.fix`) into the fake repo;
    return the expected multiset of (relative path, line, rule)."""
    (tmp / "tools").mkdir()
    shutil.copyfile(REPO / "tools" / "lint.py", tmp / "tools" / "lint.py")
    expected: Counter = Counter()
    for fix in sorted(FIXTURES.rglob("*.fix")):
        rel = fix.relative_to(FIXTURES).with_suffix("")
        dest = tmp / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fix, dest)  # byte-exact: whitespace rules matter
        for lineno, line in enumerate(fix.read_text().split("\n"), start=1):
            m = EXPECT_RE.search(line.rstrip())
            if m:
                for rule in m.group(1).split(","):
                    expected[(rel.as_posix(), lineno, rule.strip())] += 1
    return expected


def run_lint(tmp: Path, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(tmp / "tools" / "lint.py"), *args],
        capture_output=True, text=True)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="lint_selftest_"))
    failures: list[str] = []
    try:
        expected = install_fixtures(tmp)
        if not expected:
            print("lint_selftest: no expectations found in fixtures",
                  file=sys.stderr)
            return 2

        proc = run_lint(tmp, "src")
        actual: Counter = Counter()
        for line in proc.stdout.splitlines():
            m = FINDING_RE.match(line)
            if m:
                actual[(m.group(1), int(m.group(2)), m.group(3))] += 1

        for key, count in sorted(expected.items()):
            got = actual.get(key, 0)
            if got != count:
                failures.append(
                    f"expected {count}x {key[0]}:{key[1]} [{key[2]}], "
                    f"lint reported {got}")
        for key in sorted(set(actual) - set(expected)):
            failures.append(
                f"unexpected finding {key[0]}:{key[1]} [{key[2]}]")
        if proc.returncode != 1:
            failures.append(
                f"full fixture run exited {proc.returncode}, expected 1")

        # A clean file on its own must produce no findings and exit 0.
        clean = run_lint(tmp, str(tmp / "src" / "util" / "clean.cpp"))
        if clean.returncode != 0 or clean.stdout.strip():
            failures.append(
                "clean fixture was not clean: "
                f"exit {clean.returncode}, output {clean.stdout!r}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    for f in failures:
        print(f"lint_selftest: {f}", file=sys.stderr)
    total = sum(expected.values())
    if not failures:
        print(f"lint_selftest: ok ({total} expected findings matched)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
