#include "topology/builders.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(BuildersTest, TwoLevelShape) {
  const Tree t = make_two_level_tree(3, 5);
  EXPECT_EQ(t.node_count(), 15);
  EXPECT_EQ(t.leaf_count(), 3);
  EXPECT_EQ(t.depth(), 2);
}

TEST(BuildersTest, ThreeLevelShape) {
  const Tree t = make_three_level_tree(2, 3, 4);
  EXPECT_EQ(t.node_count(), 24);
  EXPECT_EQ(t.leaf_count(), 6);
  EXPECT_EQ(t.switch_count(), 6 + 2 + 1);
  EXPECT_EQ(t.depth(), 3);
}

TEST(BuildersTest, DepartmentClusterHasFiftyNodes) {
  // §1: "our department cluster (50-node ...)".
  const Tree t = make_department_cluster();
  EXPECT_EQ(t.node_count(), 50);
  EXPECT_EQ(t.depth(), 2);
  EXPECT_GE(t.leaf_count(), 2);  // Figure 1 needs two shared switches
}

TEST(BuildersTest, IitkHas16NodesPerLeaf) {
  // §5.2: "The former has 16 nodes/leaf switch".
  const Tree t = make_iitk_hpc2010();
  for (const SwitchId leaf : t.leaves())
    EXPECT_EQ(t.nodes_of_leaf(leaf).size(), 16u);
}

TEST(BuildersTest, LbnlLeavesAreInPaperRange) {
  // §2/§5.2: "a tree topology with 330-380 nodes/switch".
  const Tree t = make_lbnl_style();
  for (const SwitchId leaf : t.leaves()) {
    EXPECT_GE(t.nodes_of_leaf(leaf).size(), 330u);
    EXPECT_LE(t.nodes_of_leaf(leaf).size(), 380u);
  }
}

TEST(BuildersTest, ThetaMatchesMachineSize) {
  // §5.1: "The Theta supercomputer consists of 4,392 ... nodes".
  const Tree t = make_theta();
  EXPECT_EQ(t.node_count(), 4392);
  EXPECT_EQ(t.depth(), 2);
  // Big-leaf topology: in the 330-380 nodes/switch range the paper cites.
  for (const SwitchId leaf : t.leaves()) {
    EXPECT_GE(t.nodes_of_leaf(leaf).size(), 330u);
    EXPECT_LE(t.nodes_of_leaf(leaf).size(), 380u);
  }
}

TEST(BuildersTest, IntrepidFitsMaxRequest) {
  // §5.1: Intrepid max request 40960 -> machine must hold it. Emulated as
  // an LBNL-style big-leaf two-level tree (§2: 330-380 nodes/switch).
  const Tree t = make_intrepid();
  EXPECT_EQ(t.node_count(), 40960);
  EXPECT_EQ(t.depth(), 2);
  for (const SwitchId leaf : t.leaves())
    EXPECT_EQ(t.nodes_of_leaf(leaf).size(), 320u);
}

TEST(BuildersTest, MiraFitsMaxRequest) {
  // §5.1: Mira is a 48K-node system; max request 16384.
  const Tree t = make_mira();
  EXPECT_EQ(t.node_count(), 49152);
  EXPECT_GE(t.node_count(), 16384);
  EXPECT_EQ(t.depth(), 2);
}

TEST(BuildersTest, MakeMachineDispatch) {
  EXPECT_EQ(make_machine("figure2").node_count(), 8);
  EXPECT_EQ(make_machine("theta").node_count(), 4392);
  EXPECT_THROW(make_machine("summit"), InvariantError);
}

TEST(BuildersTest, RejectsNonPositiveShapes) {
  EXPECT_THROW(make_two_level_tree(0, 4), InvariantError);
  EXPECT_THROW(make_two_level_tree(4, 0), InvariantError);
  EXPECT_THROW(make_three_level_tree(1, 0, 4), InvariantError);
}

TEST(BuildersTest, NodeNamesAreUniqueAndPrefixed) {
  const Tree t = make_two_level_tree(2, 3, "cn", "sw");
  EXPECT_EQ(t.node_name(0), "cn0");
  EXPECT_EQ(t.node_name(5), "cn5");
  EXPECT_EQ(t.switch_name(t.root()), "sw2");
}

}  // namespace
}  // namespace commsched
