#include "topology/conf.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {
namespace {

Tree parse(const std::string& text) {
  std::istringstream in(text);
  return parse_topology_conf(in);
}

TEST(ConfParseTest, PaperExample) {
  // Verbatim from §5.2 of the paper.
  const Tree tree = parse(
      "SwitchName=s0 Nodes=n[0-3]\n"
      "SwitchName=s1 Nodes=n[4-7]\n"
      "SwitchName=s2 Switches=s[0-1]\n");
  EXPECT_EQ(tree.node_count(), 8);
  EXPECT_EQ(tree.leaf_count(), 2);
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.switch_name(tree.root()), "s2");
  EXPECT_EQ(tree.distance(*tree.node_by_name("n0"), *tree.node_by_name("n4")),
            4);
}

TEST(ConfParseTest, ParentBeforeChildren) {
  // SLURM allows parents to be declared before the switches they contain.
  const Tree tree = parse(
      "SwitchName=root Switches=a,b\n"
      "SwitchName=a Nodes=x[0-1]\n"
      "SwitchName=b Nodes=y[0-2]\n");
  EXPECT_EQ(tree.node_count(), 5);
  EXPECT_EQ(tree.switch_name(tree.root()), "root");
}

TEST(ConfParseTest, CommentsAndBlankLines) {
  const Tree tree = parse(
      "# full-line comment\n"
      "\n"
      "SwitchName=s0 Nodes=n[0-1]  # trailing comment\n"
      "SwitchName=s1 Nodes=n[2-3]\n"
      "SwitchName=top Switches=s[0-1]\n");
  EXPECT_EQ(tree.node_count(), 4);
}

TEST(ConfParseTest, ThreeLevels) {
  const Tree tree = parse(
      "SwitchName=l0 Nodes=n[0-3]\n"
      "SwitchName=l1 Nodes=n[4-7]\n"
      "SwitchName=l2 Nodes=n[8-11]\n"
      "SwitchName=l3 Nodes=n[12-15]\n"
      "SwitchName=g0 Switches=l[0-1]\n"
      "SwitchName=g1 Switches=l[2-3]\n"
      "SwitchName=root Switches=g[0-1]\n");
  EXPECT_EQ(tree.depth(), 3);
  EXPECT_EQ(tree.distance(0, 15), 6);
}

TEST(ConfParseTest, RejectsMissingSwitchName) {
  EXPECT_THROW(parse("Nodes=n[0-3]\n"), ParseError);
}

TEST(ConfParseTest, RejectsBothNodesAndSwitches) {
  EXPECT_THROW(parse("SwitchName=s0 Nodes=n0 Switches=x\n"), ParseError);
}

TEST(ConfParseTest, RejectsNeitherNodesNorSwitches) {
  EXPECT_THROW(parse("SwitchName=s0\n"), ParseError);
}

TEST(ConfParseTest, RejectsUnknownKey) {
  EXPECT_THROW(parse("SwitchName=s0 Hosts=n0\n"), ParseError);
}

TEST(ConfParseTest, RejectsDanglingReference) {
  EXPECT_THROW(parse("SwitchName=s0 Nodes=n0\n"
                     "SwitchName=top Switches=s0,ghost\n"),
               ParseError);
}

TEST(ConfParseTest, RejectsSwitchCycle) {
  EXPECT_THROW(parse("SwitchName=a Switches=b\n"
                     "SwitchName=b Switches=a\n"),
               ParseError);
}

TEST(ConfParseTest, RejectsDuplicateSwitch) {
  EXPECT_THROW(parse("SwitchName=s0 Nodes=n0\n"
                     "SwitchName=s0 Nodes=n1\n"),
               ParseError);
}

TEST(ConfParseTest, RejectsEmptyFile) {
  EXPECT_THROW(parse("# only comments\n\n"), ParseError);
}

TEST(ConfParseTest, RejectsMultipleRoots) {
  EXPECT_THROW(parse("SwitchName=s0 Nodes=n0\n"
                     "SwitchName=s1 Nodes=n1\n"),
               InvariantError);
}

TEST(ConfWriteTest, EmitsHostlistNotation) {
  const Tree tree = make_figure2_tree();
  const std::string text = write_topology_conf(tree);
  EXPECT_NE(text.find("SwitchName=s0 Nodes=n[0-3]"), std::string::npos);
  EXPECT_NE(text.find("SwitchName=s1 Nodes=n[4-7]"), std::string::npos);
  EXPECT_NE(text.find("SwitchName=s2 Switches=s[0-1]"), std::string::npos);
}

void expect_same_structure(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.switch_count(), b.switch_count());
  ASSERT_EQ(a.leaf_count(), b.leaf_count());
  ASSERT_EQ(a.depth(), b.depth());
  // Node names must map to the same leaf names and pairwise distances.
  for (NodeId n = 0; n < a.node_count(); n += 97) {
    const NodeId m = *b.node_by_name(a.node_name(n));
    EXPECT_EQ(a.switch_name(a.leaf_of(n)), b.switch_name(b.leaf_of(m)));
  }
  for (NodeId x = 0; x < a.node_count(); x += 131) {
    for (NodeId y = 0; y < a.node_count(); y += 173) {
      const NodeId bx = *b.node_by_name(a.node_name(x));
      const NodeId by = *b.node_by_name(a.node_name(y));
      EXPECT_EQ(a.distance(x, y), b.distance(bx, by));
    }
  }
}

class ConfRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfRoundTrip, WriteThenParsePreservesStructure) {
  const Tree original = make_machine(GetParam());
  std::istringstream in(write_topology_conf(original));
  const Tree reparsed = parse_topology_conf(in);
  expect_same_structure(original, reparsed);
}

INSTANTIATE_TEST_SUITE_P(Machines, ConfRoundTrip,
                         ::testing::Values("figure2", "department", "iitk",
                                           "lbnl", "theta", "intrepid",
                                           "mira"));

TEST(ConfFileTest, SaveAndLoad) {
  const auto path = std::filesystem::temp_directory_path() /
                    "commsched_conf_test.conf";
  const Tree tree = make_department_cluster();
  ASSERT_TRUE(save_topology_conf(tree, path.string()));
  const Tree loaded = load_topology_conf(path.string());
  expect_same_structure(tree, loaded);
  std::filesystem::remove(path);
}

TEST(ConfFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_topology_conf("/nonexistent/topology.conf"), ParseError);
}

}  // namespace
}  // namespace commsched
