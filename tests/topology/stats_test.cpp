#include "topology/stats.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace commsched {
namespace {

TEST(TopologyStatsTest, TwoLevelTree) {
  const TopologyStats s = compute_topology_stats(make_two_level_tree(4, 16));
  EXPECT_EQ(s.nodes, 64);
  EXPECT_EQ(s.switches, 5);
  EXPECT_EQ(s.leaves, 4);
  EXPECT_EQ(s.depth, 2);
  EXPECT_EQ(s.min_leaf_nodes, 16);
  EXPECT_EQ(s.max_leaf_nodes, 16);
  EXPECT_DOUBLE_EQ(s.mean_leaf_nodes, 16.0);
  ASSERT_EQ(s.levels.size(), 2u);
  EXPECT_EQ(s.levels[0].switches, 4);
  EXPECT_EQ(s.levels[0].downlinks, 64);  // node links
  EXPECT_EQ(s.levels[0].uplinks, 4);
  EXPECT_EQ(s.levels[1].switches, 1);
  EXPECT_EQ(s.levels[1].downlinks, 4);
  EXPECT_EQ(s.levels[1].uplinks, 0);  // the root
  EXPECT_DOUBLE_EQ(s.leaf_oversubscription, 16.0);
}

TEST(TopologyStatsTest, ThreeLevelTree) {
  const TopologyStats s =
      compute_topology_stats(make_three_level_tree(2, 3, 4));
  EXPECT_EQ(s.depth, 3);
  ASSERT_EQ(s.levels.size(), 3u);
  EXPECT_EQ(s.levels[0].switches, 6);
  EXPECT_EQ(s.levels[1].switches, 2);
  EXPECT_EQ(s.levels[1].downlinks, 6);
  EXPECT_EQ(s.levels[1].uplinks, 2);
  EXPECT_EQ(s.levels[2].switches, 1);
}

TEST(TopologyStatsTest, IrregularLeavesReported) {
  const TopologyStats s = compute_topology_stats(make_lbnl_style());
  EXPECT_EQ(s.min_leaf_nodes, 330);
  EXPECT_EQ(s.max_leaf_nodes, 380);
  EXPECT_GT(s.mean_leaf_nodes, 330.0);
  EXPECT_LT(s.mean_leaf_nodes, 380.0);
}

TEST(TopologyStatsTest, SingleLeafHasNoOversubscription) {
  TreeBuilder b;
  b.add_leaf("only", {"n0", "n1", "n2"});
  const TopologyStats s = compute_topology_stats(b.build());
  EXPECT_DOUBLE_EQ(s.leaf_oversubscription, 0.0);
  EXPECT_EQ(s.levels[0].uplinks, 0);
}

TEST(TopologyStatsTest, FormatMentionsKeyNumbers) {
  const std::string text =
      format_topology_stats(compute_topology_stats(make_theta()));
  EXPECT_NE(text.find("4392 nodes"), std::string::npos);
  EXPECT_NE(text.find("12 leaves"), std::string::npos);
  EXPECT_NE(text.find("366.0"), std::string::npos);
}

}  // namespace
}  // namespace commsched
