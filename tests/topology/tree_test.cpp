#include "topology/tree.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(TreeBuilderTest, Figure2Structure) {
  // The paper's Figure 2: s0 = n0..n3, s1 = n4..n7, s2 root.
  const Tree tree = make_figure2_tree();
  EXPECT_EQ(tree.node_count(), 8);
  EXPECT_EQ(tree.switch_count(), 3);
  EXPECT_EQ(tree.leaf_count(), 2);
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.switch_name(tree.root()), "s2");
  EXPECT_FALSE(tree.is_leaf(tree.root()));
  EXPECT_EQ(tree.level(tree.root()), 2);
}

TEST(TreeBuilderTest, LeafMembership) {
  const Tree tree = make_figure2_tree();
  const SwitchId s0 = *tree.switch_by_name("s0");
  const SwitchId s1 = *tree.switch_by_name("s1");
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(tree.leaf_of(n), s0);
  for (NodeId n = 4; n < 8; ++n) EXPECT_EQ(tree.leaf_of(n), s1);
  EXPECT_EQ(tree.nodes_of_leaf(s0).size(), 4u);
  EXPECT_EQ(tree.nodes_of_leaf(s1).size(), 4u);
}

TEST(TreeTest, DistanceMatchesPaperEquation4) {
  // §5.3: same leaf -> d = 2, different leaf in a two-level tree -> d = 4.
  const Tree tree = make_figure2_tree();
  EXPECT_EQ(tree.distance(0, 1), 2);  // d(n0, n1) = 2
  EXPECT_EQ(tree.distance(0, 4), 4);  // d(n0, n4) = 4
  EXPECT_EQ(tree.distance(0, 0), 0);
}

TEST(TreeTest, LowestCommonSwitch) {
  const Tree tree = make_figure2_tree();
  const SwitchId s0 = *tree.switch_by_name("s0");
  EXPECT_EQ(tree.lowest_common_switch(0, 3), s0);
  EXPECT_EQ(tree.lowest_common_switch(0, 7), tree.root());
  EXPECT_EQ(tree.lca_level(0, 3), 1);
  EXPECT_EQ(tree.lca_level(0, 7), 2);
}

TEST(TreeTest, ThreeLevelDistances) {
  // 2 groups x 2 leaves x 4 nodes: nodes 0-3 | 4-7 || 8-11 | 12-15.
  const Tree tree = make_three_level_tree(2, 2, 4);
  EXPECT_EQ(tree.depth(), 3);
  EXPECT_EQ(tree.node_count(), 16);
  EXPECT_EQ(tree.distance(0, 1), 2);    // same leaf
  EXPECT_EQ(tree.distance(0, 5), 4);    // same group, different leaf
  EXPECT_EQ(tree.distance(0, 12), 6);   // different group -> root, level 3
  EXPECT_EQ(tree.lca_level(0, 12), 3);
}

TEST(TreeTest, LeavesUnderInternalSwitch) {
  const Tree tree = make_three_level_tree(2, 2, 4);
  EXPECT_EQ(tree.leaves_under(tree.root()).size(), 4u);
  for (const SwitchId g : tree.switches_at_level(2))
    EXPECT_EQ(tree.leaves_under(g).size(), 2u);
  for (const SwitchId l : tree.leaves())
    EXPECT_EQ(tree.leaves_under(l).size(), 1u);
}

TEST(TreeTest, NodeCountUnder) {
  const Tree tree = make_three_level_tree(2, 2, 4);
  EXPECT_EQ(tree.node_count_under(tree.root()), 16);
  for (const SwitchId g : tree.switches_at_level(2))
    EXPECT_EQ(tree.node_count_under(g), 8);
  for (const SwitchId l : tree.leaves()) EXPECT_EQ(tree.node_count_under(l), 4);
}

TEST(TreeTest, ParentChildConsistency) {
  const Tree tree = make_three_level_tree(2, 3, 2);
  EXPECT_EQ(tree.parent(tree.root()), kInvalidSwitch);
  for (SwitchId s = 0; s < tree.switch_count(); ++s) {
    if (s == tree.root()) continue;
    const SwitchId p = tree.parent(s);
    ASSERT_NE(p, kInvalidSwitch);
    const auto kids = tree.children(p);
    EXPECT_NE(std::find(kids.begin(), kids.end(), s), kids.end());
  }
}

TEST(TreeTest, SwitchesAtLevelPartitionAllSwitches) {
  const Tree tree = make_three_level_tree(3, 4, 8);
  int total = 0;
  for (int lvl = 1; lvl <= tree.depth(); ++lvl)
    total += static_cast<int>(tree.switches_at_level(lvl).size());
  EXPECT_EQ(total, tree.switch_count());
  EXPECT_EQ(tree.switches_at_level(1).size(),
            static_cast<std::size_t>(tree.leaf_count()));
  EXPECT_EQ(tree.switches_at_level(tree.depth()).size(), 1u);
}

TEST(TreeTest, NameLookups) {
  const Tree tree = make_figure2_tree();
  EXPECT_EQ(tree.node_by_name("n5"), NodeId{5});
  EXPECT_FALSE(tree.node_by_name("nope").has_value());
  EXPECT_TRUE(tree.switch_by_name("s1").has_value());
  EXPECT_FALSE(tree.switch_by_name("sX").has_value());
  EXPECT_EQ(tree.node_name(5), "n5");
}

TEST(TreeBuilderTest, RejectsEmptyLeaf) {
  TreeBuilder b;
  EXPECT_THROW(b.add_leaf("s0", {}), InvariantError);
}

TEST(TreeBuilderTest, RejectsEmptyInternalSwitch) {
  TreeBuilder b;
  b.add_leaf("s0", {"n0"});
  EXPECT_THROW(b.add_switch("p", {}), InvariantError);
}

TEST(TreeBuilderTest, RejectsDoubleParenting) {
  TreeBuilder b;
  const SwitchId leaf = b.add_leaf("s0", {"n0"});
  b.add_switch("p1", {leaf});
  EXPECT_THROW(b.add_switch("p2", {leaf}), InvariantError);
}

TEST(TreeBuilderTest, RejectsMultipleRoots) {
  TreeBuilder b;
  b.add_leaf("s0", {"n0"});
  b.add_leaf("s1", {"n1"});
  EXPECT_THROW(b.build(), InvariantError);  // two disconnected leaves
}

TEST(TreeBuilderTest, RejectsDuplicateSwitchNames) {
  TreeBuilder b;
  const SwitchId a = b.add_leaf("dup", {"n0"});
  const SwitchId c = b.add_leaf("dup", {"n1"});
  b.add_switch("root", {a, c});
  EXPECT_THROW(b.build(), InvariantError);
}

TEST(TreeBuilderTest, RejectsDuplicateNodeNames) {
  TreeBuilder b;
  const SwitchId a = b.add_leaf("s0", {"n0"});
  const SwitchId c = b.add_leaf("s1", {"n0"});
  b.add_switch("root", {a, c});
  EXPECT_THROW(b.build(), InvariantError);
}

TEST(TreeBuilderTest, SingleLeafIsItsOwnRoot) {
  TreeBuilder b;
  b.add_leaf("only", {"n0", "n1"});
  const Tree tree = b.build();
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_TRUE(tree.is_leaf(tree.root()));
  EXPECT_EQ(tree.distance(0, 1), 2);
}

TEST(TreeTest, IdChecksThrow) {
  const Tree tree = make_figure2_tree();
  EXPECT_THROW(tree.leaf_of(-1), InvariantError);
  EXPECT_THROW(tree.leaf_of(8), InvariantError);
  EXPECT_THROW(tree.level(99), InvariantError);
  EXPECT_THROW(tree.nodes_of_leaf(tree.root()), InvariantError);
}

// Property sweep: distance symmetry and triangle-ish structure across shapes.
class TreeShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TreeShapeSweep, DistanceIsSymmetricAndBounded) {
  const auto [groups, leaves, nodes] = GetParam();
  const Tree tree = make_three_level_tree(groups, leaves, nodes);
  const int max_d = 2 * tree.depth();
  for (NodeId a = 0; a < tree.node_count(); a += 3) {
    for (NodeId b = a; b < tree.node_count(); b += 5) {
      const int d = tree.distance(a, b);
      EXPECT_EQ(d, tree.distance(b, a));
      if (a == b) {
        EXPECT_EQ(d, 0);
      } else {
        EXPECT_GE(d, 2);
        EXPECT_LE(d, max_d);
        EXPECT_EQ(d == 2, tree.leaf_of(a) == tree.leaf_of(b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeShapeSweep,
                         ::testing::Values(std::tuple{1, 2, 4},
                                           std::tuple{2, 2, 4},
                                           std::tuple{2, 3, 5},
                                           std::tuple{4, 4, 4},
                                           std::tuple{3, 1, 7}));

}  // namespace
}  // namespace commsched
