#include "torus/torus.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(TorusGeometryTest, CoordinateRoundTrip) {
  const Torus t(4, 3, 2);
  EXPECT_EQ(t.node_count(), 24);
  for (TorusNodeId n = 0; n < t.node_count(); ++n)
    EXPECT_EQ(t.id_of(t.coord_of(n)), n);
}

TEST(TorusGeometryTest, IdOfWrapsNegativeAndOverflowing) {
  const Torus t(4, 4, 4);
  EXPECT_EQ(t.id_of({-1, 0, 0}), t.id_of({3, 0, 0}));
  EXPECT_EQ(t.id_of({5, 0, 0}), t.id_of({1, 0, 0}));
  EXPECT_EQ(t.id_of({0, -2, 9}), t.id_of({0, 2, 1}));
}

TEST(TorusGeometryTest, RingDistanceWrapsAround) {
  EXPECT_EQ(Torus::ring_distance(0, 3, 8), 3);
  EXPECT_EQ(Torus::ring_distance(0, 7, 8), 1);  // wrap
  EXPECT_EQ(Torus::ring_distance(2, 6, 8), 4);  // tie: direct == wrapped
  EXPECT_EQ(Torus::ring_distance(5, 5, 8), 0);
}

TEST(TorusGeometryTest, ManhattanWithWraparound) {
  const Torus t(8, 8, 8);
  const TorusNodeId a = t.id_of({0, 0, 0});
  EXPECT_EQ(t.distance(a, t.id_of({1, 0, 0})), 1);
  EXPECT_EQ(t.distance(a, t.id_of({7, 0, 0})), 1);   // wrap in x
  EXPECT_EQ(t.distance(a, t.id_of({4, 4, 4})), 12);  // farthest corner
  EXPECT_EQ(t.distance(a, t.id_of({7, 7, 7})), 3);   // wraps everywhere
  EXPECT_EQ(t.distance(a, a), 0);
}

TEST(TorusGeometryTest, DistanceIsSymmetric) {
  const Torus t(5, 4, 3);
  for (TorusNodeId a = 0; a < t.node_count(); a += 7)
    for (TorusNodeId b = 0; b < t.node_count(); b += 5)
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
}

TEST(TorusStateTest, OccupyReleaseBookkeeping) {
  const Torus t(4, 4, 1);
  TorusState state(t);
  EXPECT_EQ(state.total_free(), 16);
  const std::vector<TorusNodeId> nodes{0, 1, 5};
  state.occupy(nodes, /*comm=*/true);
  EXPECT_EQ(state.total_free(), 13);
  EXPECT_FALSE(state.is_free(0));
  EXPECT_TRUE(state.is_comm(0));
  state.release(nodes);
  EXPECT_EQ(state.total_free(), 16);
  EXPECT_TRUE(state.is_free(0));
  EXPECT_FALSE(state.is_comm(0));
}

TEST(TorusStateTest, PreconditionsThrow) {
  const Torus t(2, 2, 1);
  TorusState state(t);
  const std::vector<TorusNodeId> n0{0};
  state.occupy(n0, false);
  EXPECT_THROW(state.occupy(n0, false), InvariantError);
  const std::vector<TorusNodeId> n1{1};
  EXPECT_THROW(state.release(n1), InvariantError);
}

TEST(TorusContentionTest, EmptyMachineIsZero) {
  const Torus t(4, 4, 4);
  const TorusState state(t);
  EXPECT_DOUBLE_EQ(torus_contention(state, 0, 5), 0.0);
}

TEST(TorusContentionTest, CommDensityInRoutingBox) {
  const Torus t(4, 1, 1);
  TorusState state(t);
  // Box between x=0 and x=2 covers {0,1,2}. Put a comm node at x=1.
  const std::vector<TorusNodeId> busy{1};
  state.occupy(busy, /*comm=*/true);
  EXPECT_DOUBLE_EQ(torus_contention(state, 0, 2), 1.0 / 3.0);
  // The wrap-side pair (0, 3) has box {3, 0}: no comm nodes there.
  EXPECT_DOUBLE_EQ(torus_contention(state, 0, 3), 0.0);
}

TEST(TorusContentionTest, HopsScaleWithContention) {
  const Torus t(4, 4, 1);
  TorusState state(t);
  EXPECT_DOUBLE_EQ(torus_effective_hops(state, 0, 1), 1.0);
  const std::vector<TorusNodeId> busy{0, 1};
  state.occupy(busy, true);
  // C(0,1) over box {0,1} is now 1.0 -> hops 1 * (1 + 1) = 2.
  EXPECT_DOUBLE_EQ(torus_effective_hops(state, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(torus_effective_hops(state, 2, 2), 0.0);
}

TEST(TorusCostTest, SumsPerStepMaxima) {
  const Torus t(8, 1, 1);
  const TorusState state(t);
  // RD over 4 ranks on the x-ring at positions 0..3.
  const std::vector<TorusNodeId> nodes{0, 1, 2, 3};
  const auto sched = make_schedule(Pattern::kRecursiveDoubling, 4, 1.0);
  // Step 0: pairs (0,1),(2,3) -> max distance 1. Step 1: (0,2),(1,3) -> 2.
  EXPECT_DOUBLE_EQ(torus_cost(state, nodes, sched), 1.0 + 2.0);
}

TEST(CuboidAllocationTest, PicksCompactBlock) {
  const Torus t(8, 8, 8);
  const TorusState state(t);
  const auto nodes = cuboid_allocation(state, 8);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(nodes->size(), 8u);
  // A 2x2x2 block: max pairwise distance 3.
  int max_d = 0;
  for (const TorusNodeId a : *nodes)
    for (const TorusNodeId b : *nodes)
      max_d = std::max(max_d, t.distance(a, b));
  EXPECT_LE(max_d, 3);
  const std::set<TorusNodeId> unique(nodes->begin(), nodes->end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(CuboidAllocationTest, AvoidsOccupiedRegions) {
  const Torus t(4, 4, 1);
  TorusState state(t);
  // Occupy the whole left half (x in {0,1}).
  std::vector<TorusNodeId> busy;
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 2; ++x) busy.push_back(t.id_of({x, y, 0}));
  state.occupy(busy, false);
  const auto nodes = cuboid_allocation(state, 4);
  ASSERT_TRUE(nodes.has_value());
  for (const TorusNodeId n : *nodes) {
    EXPECT_TRUE(state.is_free(n));
    EXPECT_GE(t.coord_of(n).x, 2);
  }
}

TEST(CuboidAllocationTest, NulloptWhenOnlyFragmentsRemain) {
  const Torus t(4, 1, 1);
  TorusState state(t);
  // Occupy x=1 and x=3: only isolated single nodes remain.
  const std::vector<TorusNodeId> busy{1, 3};
  state.occupy(busy, false);
  EXPECT_TRUE(cuboid_allocation(state, 1).has_value());
  EXPECT_FALSE(cuboid_allocation(state, 2).has_value());
  EXPECT_FALSE(cuboid_allocation(state, 5).has_value());  // over capacity
}

TEST(FirstFitAllocationTest, TakesLowestFreeIds) {
  const Torus t(4, 2, 1);
  TorusState state(t);
  const std::vector<TorusNodeId> busy{0, 2};
  state.occupy(busy, false);
  const auto nodes = first_fit_allocation(state, 3);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<TorusNodeId>{1, 3, 4}));
  EXPECT_FALSE(first_fit_allocation(state, 7).has_value());
}

TEST(TorusThesisTest, CompactBlocksPriceBelowScatteredAllocations) {
  // The paper's thesis transplanted to the torus: a compact cuboid beats a
  // fragmented first-fit allocation on Eq. 6 cost for RD/RHVD.
  const Torus t(8, 8, 4);
  TorusState state(t);
  // Fragment the id space: occupy every other node in the low-id region.
  std::vector<TorusNodeId> busy;
  for (TorusNodeId n = 0; n < 128; n += 2) busy.push_back(n);
  state.occupy(busy, /*comm=*/true);

  for (const Pattern p :
       {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD}) {
    const auto sched = make_schedule(p, 32, 1.0);
    const auto compact = cuboid_allocation(state, 32);
    const auto scattered = first_fit_allocation(state, 32);
    ASSERT_TRUE(compact.has_value());
    ASSERT_TRUE(scattered.has_value());
    EXPECT_LT(torus_cost(state, *compact, sched),
              torus_cost(state, *scattered, sched))
        << pattern_name(p);
  }
}

}  // namespace
}  // namespace commsched
