// Durability contract of the crash-safe file primitives (util/file_io.hpp):
// complete '\n'-terminated lines survive a kill at any instant, a partial
// trailing line is detected (and truncatable) on resume, and atomic writes
// never expose a half-written file.
#include "util/file_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace commsched {
namespace {

std::filesystem::path test_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("commsched_file_io_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

TEST(AppendFile, AppendsLinesAndReportsSize) {
  const auto dir = test_dir("append");
  const std::string path = (dir / "nested" / "stream.jsonl").string();
  AppendFile f(path);  // creates the missing parent directory
  EXPECT_TRUE(f.is_open());
  EXPECT_EQ(f.path(), path);
  EXPECT_EQ(f.size(), 0u);
  f.append_line("alpha");
  f.append_line("");
  f.append_line("beta");
  f.sync();
  EXPECT_EQ(f.size(), 12u);
  EXPECT_EQ(slurp(path), "alpha\n\nbeta\n");
}

TEST(AppendFile, ReopensInAppendModeAndTruncatesOnRequest) {
  const auto dir = test_dir("reopen");
  const std::string path = (dir / "s.txt").string();
  {
    AppendFile f(path);
    f.append_line("one");
  }
  {
    AppendFile f(path);  // default: keep existing content
    EXPECT_EQ(f.size(), 4u);
    f.append_line("two");
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  {
    AppendFile f(path, /*truncate=*/true);
    EXPECT_EQ(f.size(), 0u);
    f.append_line("fresh");
  }
  EXPECT_EQ(slurp(path), "fresh\n");
}

TEST(AppendFile, TruncateToDropsTrailingBytes) {
  const auto dir = test_dir("truncate");
  const std::string path = (dir / "s.txt").string();
  AppendFile f(path);
  f.append_line("keep");
  f.append_line("drop");
  f.truncate_to(5);
  EXPECT_EQ(f.size(), 5u);
  f.append_line("next");
  EXPECT_EQ(slurp(path), "keep\nnext\n");
}

TEST(AppendFile, RejectsEmbeddedNewlinesAndClosedUse) {
  const auto dir = test_dir("misuse");
  AppendFile f((dir / "s.txt").string());
  EXPECT_THROW(f.append_line("a\nb"), InvariantError);
  f.close();
  EXPECT_FALSE(f.is_open());
  EXPECT_THROW(f.append_line("x"), InvariantError);
  EXPECT_THROW(f.sync(), InvariantError);
  EXPECT_THROW((void)f.size(), InvariantError);
}

TEST(AppendFile, MoveTransfersOwnership) {
  const auto dir = test_dir("move");
  AppendFile a((dir / "s.txt").string());
  a.append_line("from-a");
  AppendFile b(std::move(a));
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.is_open());
  b.append_line("from-b");
  AppendFile c;
  c = std::move(b);
  c.append_line("from-c");
  EXPECT_EQ(slurp(dir / "s.txt"), "from-a\nfrom-b\nfrom-c\n");
}

TEST(ReadCompleteLines, DropsPartialTrailingLineAndReportsValidBytes) {
  const auto dir = test_dir("partial");
  const std::string path = (dir / "s.txt").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "first\nsecond\npart";  // killed mid-append: no trailing '\n'
  }
  std::uint64_t valid = 0;
  const std::vector<std::string> lines = read_complete_lines(path, &valid);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(valid, 13u);  // one past "second\n"

  // Truncating to valid_bytes and appending resumes a clean stream.
  AppendFile f(path);
  f.truncate_to(valid);
  f.append_line("third");
  EXPECT_EQ(slurp(path), "first\nsecond\nthird\n");
}

TEST(ReadCompleteLines, HandlesEmptyAndHeaderOnlyFiles) {
  const auto dir = test_dir("empty");
  const std::string path = (dir / "s.txt").string();
  { std::ofstream f(path); }
  std::uint64_t valid = 99;
  EXPECT_TRUE(read_complete_lines(path, &valid).empty());
  EXPECT_EQ(valid, 0u);
  {
    std::ofstream f(path, std::ios::binary);
    f << "header\n";
  }
  EXPECT_EQ(read_complete_lines(path).size(), 1u);
  // A file that is nothing but a partial line yields zero valid bytes.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "torn-head";
  }
  EXPECT_TRUE(read_complete_lines(path, &valid).empty());
  EXPECT_EQ(valid, 0u);
}

TEST(ReadCompleteLines, ThrowsOnMissingFile) {
  const auto dir = test_dir("missing");
  EXPECT_THROW((void)read_complete_lines((dir / "absent").string()), IoError);
}

TEST(WriteFileAtomic, WritesAndReplacesWholeFiles) {
  const auto dir = test_dir("atomic");
  const std::string path = (dir / "deep" / "out.json").string();
  write_file_atomic(path, "v1\n");
  EXPECT_EQ(slurp(path), "v1\n");
  write_file_atomic(path, "v2 longer content\n");
  EXPECT_EQ(slurp(path), "v2 longer content\n");
  // No temp litter left behind next to the target.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir / "deep")) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace commsched
