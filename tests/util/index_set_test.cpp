#include "util/index_set.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace commsched {
namespace {

TEST(IndexSetTest, StartsEmpty) {
  IndexSet s(100);
  EXPECT_EQ(s.universe(), 100u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.first(), IndexSet::npos);
  for (std::size_t r = 0; r < 100; ++r) EXPECT_FALSE(s.contains(r));
}

TEST(IndexSetTest, ZeroUniverse) {
  IndexSet s(0);
  EXPECT_EQ(s.universe(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.first(), IndexSet::npos);
}

TEST(IndexSetTest, InsertEraseSingle) {
  IndexSet s(10);
  s.insert(7);
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.first(), 7u);
  EXPECT_EQ(s.next(6), 7u);
  EXPECT_EQ(s.next(7), IndexSet::npos);
  s.erase(7);
  EXPECT_FALSE(s.contains(7));
  EXPECT_TRUE(s.empty());
}

TEST(IndexSetTest, InOrderTraversal) {
  IndexSet s(1000);
  const std::vector<std::size_t> elems = {3, 63, 64, 65, 511, 512, 999};
  // Insert out of order; traversal must still be ascending.
  s.insert(512);
  s.insert(3);
  s.insert(999);
  s.insert(64);
  s.insert(63);
  s.insert(65);
  s.insert(511);
  std::vector<std::size_t> seen;
  for (std::size_t r = s.first(); r != IndexSet::npos; r = s.next(r))
    seen.push_back(r);
  EXPECT_EQ(seen, elems);
}

TEST(IndexSetTest, ResetClears) {
  IndexSet s(100);
  s.insert(5);
  s.insert(50);
  s.reset(30);
  EXPECT_EQ(s.universe(), 30u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(5));
}

TEST(IndexSetTest, WordBoundaryNext) {
  // next() must cross 64-bit word and summary-level boundaries correctly.
  IndexSet s(64 * 64 + 1);
  s.insert(0);
  s.insert(64 * 64);  // lives in the last word, different summary subtree
  EXPECT_EQ(s.next(0), static_cast<std::size_t>(64 * 64));
  EXPECT_EQ(s.next(63), static_cast<std::size_t>(64 * 64));
  EXPECT_EQ(s.next(64 * 64), IndexSet::npos);
}

// Differential fuzz: random insert/erase churn mirrored into a std::set,
// checking size, membership, first() and full in-order traversal after
// every batch. Several universe sizes straddle the 64^k summary-tree
// breakpoints (1 level, 2 levels, 3 levels).
TEST(IndexSetTest, FuzzAgainstStdSet) {
  for (const std::size_t universe : {1u, 64u, 65u, 4096u, 4097u, 20000u}) {
    Rng rng(0xC0FFEE ^ universe);
    IndexSet fast(universe);
    std::set<std::size_t> ref;
    for (int step = 0; step < 2000; ++step) {
      const auto r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(universe) - 1));
      if (ref.count(r) != 0) {
        fast.erase(r);
        ref.erase(r);
      } else {
        fast.insert(r);
        ref.insert(r);
      }
      ASSERT_EQ(fast.size(), ref.size());
      ASSERT_EQ(fast.contains(r), ref.count(r) != 0);
      ASSERT_EQ(fast.first(),
                ref.empty() ? IndexSet::npos : *ref.begin());
      if (step % 100 == 0) {  // full traversal is O(n); sample it
        std::vector<std::size_t> seen;
        for (std::size_t x = fast.first(); x != IndexSet::npos;
             x = fast.next(x))
          seen.push_back(x);
        ASSERT_EQ(seen, std::vector<std::size_t>(ref.begin(), ref.end()));
        // next() from an absent rank lands on the successor.
        const auto probe = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(universe) - 1));
        const auto it = ref.upper_bound(probe);
        ASSERT_EQ(fast.next(probe),
                  it == ref.end() ? IndexSet::npos : *it);
      }
    }
  }
}

}  // namespace
}  // namespace commsched
