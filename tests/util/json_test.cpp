// Round-trip contract of the minimal JSON layer (util/json.hpp): doubles
// survive json_number -> parse -> as_double bit for bit, 64-bit integers
// digit for digit — the crash-safe campaign stream depends on exactly this
// to reproduce an uninterrupted run's reduced CSV byte for byte.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 passthrough
  EXPECT_EQ(json_quote("x,y"), "\"x,y\"");
}

TEST(JsonEscape, RoundTripsThroughParser) {
  const std::string nasty = "A, \"B\"\nC\\D\tE\rF \x02 caf\xc3\xa9";
  const JsonValue v = parse_json(json_quote(nasty));
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(JsonNumber, ShortestFormRoundTripsExactly) {
  const std::vector<double> samples = {
      0.0,
      -0.0,
      1.0,
      -1.5,
      1.0 / 3.0,
      2.0 / 3.0,
      0.1,
      123456.789,
      1e-300,
      9.87e20,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      4503599627370497.0,  // 2^52 + 1: integer beyond float precision
  };
  for (const double v : samples) {
    const std::string text = json_number(v);
    const double back = parse_json(text).as_double();
    EXPECT_EQ(back, v) << "via " << text;
    // Bit-exact, not just ==: distinguishes -0.0 from 0.0.
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << "via " << text;
  }
}

TEST(JsonNumber, RejectsNonFinite) {
  EXPECT_THROW((void)json_number(std::numeric_limits<double>::infinity()),
               InvariantError);
  EXPECT_THROW((void)json_number(std::numeric_limits<double>::quiet_NaN()),
               InvariantError);
}

TEST(JsonParse, IntegersRoundTripAtFullWidth) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(parse_json(std::to_string(big)).as_uint64(), big);
  const std::int64_t neg = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(parse_json(std::to_string(neg)).as_int64(), neg);
  // A fractional number is not an integer.
  EXPECT_THROW((void)parse_json("1.5").as_uint64(), ParseError);
  EXPECT_THROW((void)parse_json("-1").as_uint64(), ParseError);
}

TEST(JsonParse, DocumentStructure) {
  const JsonValue v = parse_json(
      R"({"name":"x","n":3,"ok":true,"none":null,"list":[1,2.5,"s"],)"
      R"("nested":{"a":-7}})");
  EXPECT_EQ(v.kind(), JsonValue::Kind::kObject);
  EXPECT_EQ(v.at("name").as_string(), "x");
  EXPECT_EQ(v.at("n").as_int64(), 3);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("none").is_null());
  ASSERT_EQ(v.at("list").items().size(), 3u);
  EXPECT_EQ(v.at("list").items()[1].as_double(), 2.5);
  EXPECT_EQ(v.at("nested").at("a").as_int64(), -7);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW((void)v.at("absent"), ParseError);
  // Members keep document order.
  EXPECT_EQ(v.members().front().first, "name");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse_json(R"("€")").as_string(), "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_json(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)parse_json(R"("\ud83d")"), ParseError);
  EXPECT_THROW((void)parse_json(R"("\ude00")"), ParseError);
  EXPECT_THROW((void)parse_json(R"("\uZZZZ")"), ParseError);
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json(""), ParseError);
  EXPECT_THROW((void)parse_json("{"), ParseError);
  EXPECT_THROW((void)parse_json("[1,]"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), ParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), ParseError);
  EXPECT_THROW((void)parse_json("treu"), ParseError);
  EXPECT_THROW((void)parse_json("1 2"), ParseError);
  EXPECT_THROW((void)parse_json("01x"), ParseError);
  EXPECT_THROW((void)parse_json("\"raw\ncontrol\""), ParseError);
  // Kind mismatches throw instead of defaulting.
  EXPECT_THROW((void)parse_json("3").as_string(), ParseError);
  EXPECT_THROW((void)parse_json("\"s\"").as_double(), ParseError);
  EXPECT_THROW((void)parse_json("[1]").members(), ParseError);
}

}  // namespace
}  // namespace commsched
