// LatencyHistogram: exact small values, log-linear bucketing above, merge
// and percentile semantics (the bench/serve latency accounting).
#include "util/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace commsched {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Values below 32 land in exact buckets: every percentile is a real
  // recorded value.
  EXPECT_EQ(h.percentile(50.0), 15u);
  EXPECT_EQ(h.percentile(100.0), 31u);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_EQ(h.mean(), 12345.0);
  // Percentiles clamp into [min, max], so a single sample reports itself.
  EXPECT_EQ(h.percentile(1.0), 12345u);
  EXPECT_EQ(h.percentile(50.0), 12345u);
  EXPECT_EQ(h.percentile(99.9), 12345u);
}

TEST(LatencyHistogram, PercentileWithinRelativeErrorBound) {
  // Log-linear with 32 sub-buckets per power of two: any percentile is
  // within 1/32 relative error of the true order statistic.
  Rng rng(7);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(rng.uniform_int(1, 50'000'000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const std::size_t rank = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p / 100.0 * values.size()));
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(approx, exact, exact / 16.0)
        << "p" << p << ": approx " << approx << " vs exact " << exact;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  Rng rng(11);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    if (i % 2 == 0) a.record(v);
    else b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.mean(), combined.mean());
  for (const double p : {10.0, 50.0, 95.0, 99.0})
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p" << p;
}

TEST(LatencyHistogram, HugeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  h.record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.percentile(100.0), ~std::uint64_t{0});
}

}  // namespace
}  // namespace commsched
