#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>

namespace commsched {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(2, 1), InvariantError);
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(0.5, 1.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(RngTest, UniformRealMeanIsCentered) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(2.0), 0.15);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.weibull(1.0, 2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.1);  // Weibull(k=1, lambda) has mean lambda
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(43);
  const std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(RngTest, DiscreteRejectsAllZeroWeights) {
  Rng rng(47);
  const std::array<double, 2> weights{0.0, 0.0};
  EXPECT_THROW(rng.discrete(weights), InvariantError);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identical
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(59);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(61);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementRejectsOversizedRequest) {
  Rng rng(67);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvariantError);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntIsRoughlyUniform) {
  Rng rng(GetParam());
  std::array<int, 8> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.125, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1000, 99999, 0xdeadbeef));

}  // namespace
}  // namespace commsched
