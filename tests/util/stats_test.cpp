#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValueVarianceIsZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  double var = 0.0;
  for (const double x : xs) var += (x - s.mean()) * (x - s.mean());
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(MeanSumTest, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(sum(xs), 6.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(PercentileTest, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(PercentileTest, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), InvariantError);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, -1.0), InvariantError);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101.0), InvariantError);
}

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesGivesZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, c), 0.0);
}

TEST(CorrelationTest, IndependentSeriesNearZero) {
  Rng rng(99);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform_real(0, 1));
    ys.push_back(rng.uniform_real(0, 1));
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), 0.0, 0.02);
}

TEST(CorrelationTest, RejectsMismatchedSizes) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(pearson_correlation(xs, ys), InvariantError);
}

TEST(HistogramTest, BinAssignment) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(9.99), 0u);
  EXPECT_EQ(h.bin_of(10.0), 1u);
  EXPECT_EQ(h.bin_of(29.99), 2u);
  EXPECT_EQ(h.bin_of(30.0), 2u);   // top edge clamps into last bin
  EXPECT_EQ(h.bin_of(-5.0), 0u);   // below-range clamps into first bin
  EXPECT_EQ(h.bin_of(100.0), 2u);  // above-range clamps into last bin
}

TEST(HistogramTest, CountsAndWeights) {
  Histogram h({0.0, 1.0, 2.0});
  h.add(0.5, 10.0);
  h.add(0.7, 20.0);
  h.add(1.5, 6.0);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_DOUBLE_EQ(h.bin_mean(0), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_mean(1), 6.0);
}

TEST(HistogramTest, EmptyBinMeanIsZero) {
  Histogram h({0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.bin_mean(0), 0.0);
}

TEST(HistogramTest, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), InvariantError);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvariantError);
}

}  // namespace
}  // namespace commsched
