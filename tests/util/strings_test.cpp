#include "util/strings.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <string>

namespace commsched {
namespace {

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim("nospace"), "nospace");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(SplitTest, KeepsEmptyTokens) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWsTest, DropsEmptyTokens) {
  EXPECT_EQ(split_ws("  a  b\tc \n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*parse_double("7"), 7.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(HostlistTest, PlainNamePassesThrough) {
  EXPECT_EQ(expand_hostlist("login1"), (std::vector<std::string>{"login1"}));
}

TEST(HostlistTest, ExpandsPaperExample) {
  // The exact notation from the paper's §5.2 topology.conf example.
  EXPECT_EQ(expand_hostlist("n[0-3]"),
            (std::vector<std::string>{"n0", "n1", "n2", "n3"}));
  EXPECT_EQ(expand_hostlist("s[0-1]"),
            (std::vector<std::string>{"s0", "s1"}));
}

TEST(HostlistTest, ExpandsMixedRangesAndSingles) {
  EXPECT_EQ(expand_hostlist("n[0-2,5,7-8]"),
            (std::vector<std::string>{"n0", "n1", "n2", "n5", "n7", "n8"}));
}

TEST(HostlistTest, PreservesZeroPadding) {
  EXPECT_EQ(expand_hostlist("gpu[01-03]"),
            (std::vector<std::string>{"gpu01", "gpu02", "gpu03"}));
  EXPECT_EQ(expand_hostlist("c[098-101]"),
            (std::vector<std::string>{"c098", "c099", "c100", "c101"}));
}

TEST(HostlistTest, ExpandsCommaSeparatedExpressions) {
  EXPECT_EQ(expand_hostlist("a[0-1],b2,c[5]"),
            (std::vector<std::string>{"a0", "a1", "b2", "c5"}));
}

TEST(HostlistTest, RejectsMalformedExpressions) {
  EXPECT_THROW(expand_hostlist("n[0-"), ParseError);
  EXPECT_THROW(expand_hostlist("n0]"), ParseError);
  EXPECT_THROW(expand_hostlist("n[]"), ParseError);
  EXPECT_THROW(expand_hostlist("n[3-1]"), ParseError);
  EXPECT_THROW(expand_hostlist("n[x]"), ParseError);
  EXPECT_THROW(expand_hostlist("n[1]x"), ParseError);
}

TEST(HostlistTest, CompressesConsecutiveRun) {
  EXPECT_EQ(compress_hostlist({"n0", "n1", "n2", "n3"}), "n[0-3]");
}

TEST(HostlistTest, CompressesWithGaps) {
  EXPECT_EQ(compress_hostlist({"n0", "n1", "n5", "n7", "n8"}),
            "n[0-1,5,7-8]");
}

TEST(HostlistTest, CompressesMixedPrefixes) {
  EXPECT_EQ(compress_hostlist({"a0", "a1", "b3"}), "a[0-1],b[3]");
}

TEST(HostlistTest, CompressEmptyAndPlain) {
  EXPECT_EQ(compress_hostlist({}), "");
  EXPECT_EQ(compress_hostlist({"login"}), "login");
}

TEST(HostlistTest, RoundTripLargeRange) {
  std::vector<std::string> hosts;
  for (int i = 0; i < 500; ++i) hosts.push_back("x" + std::to_string(i));
  EXPECT_EQ(expand_hostlist(compress_hostlist(hosts)), hosts);
}

TEST(HostlistTest, RoundTripPaddedNames) {
  const std::vector<std::string> hosts{"c01", "c02", "c03", "c10"};
  EXPECT_EQ(expand_hostlist(compress_hostlist(hosts)), hosts);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("SwitchName=s0", "SwitchName="));
  EXPECT_FALSE(starts_with("Nodes=n0", "SwitchName="));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(FormatDoubleTest, LocaleIndependentDecimalPoint) {
  // A comma-decimal LC_NUMERIC must not leak into the output: the emit
  // layer's golden files pin "3.14", never "3,14" (this is why the
  // implementation uses std::to_chars, not snprintf "%.*f").
  const char* saved = std::setlocale(LC_NUMERIC, nullptr);
  const std::string original = saved != nullptr ? saved : "C";
  bool have_comma_locale = false;
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      have_comma_locale = true;
      break;
    }
  }
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
  std::setlocale(LC_NUMERIC, original.c_str());
  if (!have_comma_locale)
    GTEST_SKIP() << "no comma-decimal locale installed; checked under \""
                 << original << "\" only";
}

TEST(FormatDoubleTest, RoundTripsExactlyAtHighPrecision) {
  for (const double v :
       {0.1, 1.0 / 3.0, 2.5e-3, 123456.789, 9.99999999999, -7.25}) {
    const auto parsed = parse_double(format_double(v, 17));
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_EQ(*parsed, v) << v;
  }
}

TEST(FormatDoubleTest, ExtremeValuesAndPrecisionClamp) {
  // Fixed notation of 1e308 spans ~309 digits before the point; the
  // formatter must hold it even at the clamped maximum precision instead
  // of falling back to scientific notation or truncating.
  const std::string big = format_double(1e308, 800);
  EXPECT_EQ(big.find('e'), std::string::npos);
  EXPECT_GT(big.size(), 300u);
  // Out-of-range precisions clamp instead of overflowing the buffer.
  EXPECT_EQ(format_double(2.75, -3), "3");
  EXPECT_EQ(format_double(-0.0, 2), "-0.00");
}

}  // namespace
}  // namespace commsched
