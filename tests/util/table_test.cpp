#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/assert.hpp"

namespace commsched {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name       value"), std::string::npos);
  EXPECT_NE(out.find("a          1"), std::string::npos);
  EXPECT_NE(out.find("long-name  22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, IndentPrefixesEveryLine) {
  TextTable t;
  t.add_row({"x"});
  EXPECT_EQ(t.render(4), "    x\n");
}

TEST(TextTableTest, EmptyTableRendersNothing) {
  TextTable t;
  EXPECT_EQ(t.render(), "");
  EXPECT_EQ(t.render_csv(), "");
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(TextTableTest, RowWidthMustMatchPreviousRows) {
  TextTable t;
  t.add_row({"a", "b"});
  EXPECT_THROW(t.add_row({"x"}), InvariantError);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t;
  t.add_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(t.render_csv(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TextTableTest, CsvEscapesNewlinesAndCarriageReturns) {
  // Embedded line breaks (mix labels are free-form text) must be quoted, or
  // a reader sees phantom records; bare CR is just as corrupting as LF.
  TextTable t;
  t.add_row({"a\nb", "c\rd", "e\r\nf"});
  EXPECT_EQ(t.render_csv(), "\"a\nb\",\"c\rd\",\"e\r\nf\"\n");
}

TEST(TextTableTest, CsvQuotesEdgeWhitespace) {
  // Unquoted leading/trailing blanks are legal per RFC 4180 but several
  // common readers strip them; quoting keeps " X (extension)"-style labels
  // intact through a round trip.
  TextTable t;
  t.add_row({" lead", "trail ", "\ttab", "in ner", ""});
  EXPECT_EQ(t.render_csv(), "\" lead\",\"trail \",\"\ttab\",in ner,\n");
}

TEST(TextTableTest, CsvIncludesHeader) {
  TextTable t;
  t.set_header({"h1", "h2"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "h1,h2\n1,2\n");
}

TEST(TextTableTest, WriteCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "commsched_table_test" / "nested";
  const auto path = dir / "out.csv";
  std::filesystem::remove_all(dir.parent_path());
  TextTable t;
  t.add_row({"x", "y"});
  ASSERT_TRUE(t.write_csv(path.string()));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove_all(dir.parent_path());
}

TEST(CellTest, FormatsDoubles) {
  EXPECT_EQ(cell(3.14159), "3.14");
  EXPECT_EQ(cell(2.0, 0), "2");
}

}  // namespace
}  // namespace commsched
