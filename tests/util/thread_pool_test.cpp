#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace commsched {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;  // single worker: no lock needed
  for (int i = 0; i < 5; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 20; ++i)
    pool.submit([&] {
      const std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ::setenv("COMMSCHED_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ::unsetenv("COMMSCHED_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

TEST(RunIndexed, CollectsResultsInIndexOrder) {
  for (const int threads : {1, 4}) {
    const std::vector<int> out = run_indexed<int>(
        threads, 32, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 32u);
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(RunIndexed, EmptyCountIsFine) {
  const std::vector<int> out =
      run_indexed<int>(2, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(RunIndexed, RethrowsLowestIndexException) {
  try {
    (void)run_indexed<int>(4, 16, [](std::size_t i) -> int {
      if (i == 3 || i == 11) throw std::runtime_error("boom " + std::to_string(i));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(RunIndexed, MoveOnlyResultsWork) {
  const std::vector<std::vector<int>> out = run_indexed<std::vector<int>>(
      2, 8, [](std::size_t i) { return std::vector<int>(i, 7); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].size(), i);
}

}  // namespace
}  // namespace commsched
