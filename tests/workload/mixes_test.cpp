#include "workload/mixes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/assert.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

std::size_t count_comm(const JobLog& log) {
  std::size_t n = 0;
  for (const auto& j : log)
    if (j.comm_intensive) ++n;
  return n;
}

TEST(UniformMixTest, Fields) {
  const MixSpec spec = uniform_mix(Pattern::kBinomial, 0.6, 0.4);
  EXPECT_EQ(spec.name, "Binomial");
  EXPECT_DOUBLE_EQ(spec.comm_percent, 0.6);
  EXPECT_DOUBLE_EQ(spec.comm_fraction, 0.4);
  ASSERT_EQ(spec.patterns.size(), 1u);
  EXPECT_EQ(spec.patterns[0].pattern, Pattern::kBinomial);
}

TEST(ApplyMixTest, ExactCommCount) {
  JobLog log = generate_log(theta_profile(), 1000, 1);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.5), 7);
  EXPECT_EQ(count_comm(log), 900u);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.3, 0.5), 7);
  EXPECT_EQ(count_comm(log), 300u);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.0, 0.5), 7);
  EXPECT_EQ(count_comm(log), 0u);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 1.0, 0.5), 7);
  EXPECT_EQ(count_comm(log), 1000u);
}

TEST(ApplyMixTest, CommJobsGetFractionAndPattern) {
  JobLog log = generate_log(theta_profile(), 200, 2);
  apply_mix(log, uniform_mix(Pattern::kBinomial, 0.5, 0.7), 9);
  for (const auto& j : log) {
    if (j.comm_intensive) {
      EXPECT_DOUBLE_EQ(j.comm_fraction, 0.7);
      EXPECT_EQ(j.pattern, Pattern::kBinomial);
    } else {
      EXPECT_DOUBLE_EQ(j.comm_fraction, 0.0);
    }
  }
}

TEST(ApplyMixTest, DeterministicSelection) {
  JobLog a = generate_log(theta_profile(), 300, 3);
  JobLog b = a;
  apply_mix(a, uniform_mix(Pattern::kRecursiveHalvingVD, 0.6, 0.5), 42);
  apply_mix(b, uniform_mix(Pattern::kRecursiveHalvingVD, 0.6, 0.5), 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].comm_intensive, b[i].comm_intensive);
    EXPECT_EQ(a[i].pattern, b[i].pattern);
  }
}

TEST(ApplyMixTest, WeightedPatternsRoughlyProportional) {
  JobLog log = generate_log(theta_profile(), 2000, 4);
  MixSpec spec = uniform_mix(Pattern::kRecursiveDoubling, 1.0, 0.5);
  spec.patterns = {{Pattern::kRecursiveDoubling, 1.0},
                   {Pattern::kBinomial, 3.0}};
  apply_mix(log, spec, 11);
  std::map<Pattern, int> counts;
  for (const auto& j : log) ++counts[j.pattern];
  EXPECT_NEAR(static_cast<double>(counts[Pattern::kRecursiveDoubling]) / 2000.0,
              0.25, 0.04);
  EXPECT_NEAR(static_cast<double>(counts[Pattern::kBinomial]) / 2000.0, 0.75,
              0.04);
}

TEST(ExperimentSetTest, PaperParameters) {
  // §6.2: A 67/33 RHVD; B 50/50 RHVD; C 30/70 RHVD; D 50% compute with
  // 15% RD + 35% binomial; E 30% compute with 21% RD + 49% binomial.
  const MixSpec a = experiment_set('A');
  EXPECT_DOUBLE_EQ(a.comm_fraction, 0.33);
  EXPECT_EQ(a.patterns[0].pattern, Pattern::kRecursiveHalvingVD);

  const MixSpec b = experiment_set('B');
  EXPECT_DOUBLE_EQ(b.comm_fraction, 0.50);

  const MixSpec c = experiment_set('C');
  EXPECT_DOUBLE_EQ(c.comm_fraction, 0.70);

  const MixSpec d = experiment_set('D');
  EXPECT_DOUBLE_EQ(d.comm_fraction, 0.50);
  ASSERT_EQ(d.patterns.size(), 2u);
  // RD:binomial weights in the 15:35 ratio.
  EXPECT_DOUBLE_EQ(d.patterns[0].weight / d.patterns[1].weight, 15.0 / 35.0);

  const MixSpec e = experiment_set('E');
  EXPECT_DOUBLE_EQ(e.comm_fraction, 0.70);
  EXPECT_DOUBLE_EQ(e.patterns[0].weight / e.patterns[1].weight, 21.0 / 49.0);

  // All sets mark 90% of jobs communication-intensive.
  for (const char which : {'A', 'B', 'C', 'D', 'E'})
    EXPECT_DOUBLE_EQ(experiment_set(which).comm_percent, 0.9);
}

TEST(ExperimentSetTest, RejectsUnknownSet) {
  EXPECT_THROW(experiment_set('F'), InvariantError);
  EXPECT_THROW(experiment_set('a'), InvariantError);
}

TEST(ApplyMixTest, RejectsInvalidSpec) {
  JobLog log = generate_log(theta_profile(), 10, 5);
  MixSpec bad = uniform_mix(Pattern::kRing, 0.5, 0.5);
  bad.comm_percent = 1.5;
  EXPECT_THROW(apply_mix(log, bad, 1), InvariantError);
  bad = uniform_mix(Pattern::kRing, 0.5, 0.5);
  bad.patterns.clear();
  EXPECT_THROW(apply_mix(log, bad, 1), InvariantError);
}

}  // namespace
}  // namespace commsched
