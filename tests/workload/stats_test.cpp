#include "workload/stats.hpp"

#include <gtest/gtest.h>

#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

JobLog tiny_log() {
  JobLog log;
  const int nodes[] = {4, 8, 6, 16};
  const double runtimes[] = {100.0, 200.0, 300.0, 400.0};
  for (int i = 0; i < 4; ++i) {
    JobRecord j;
    j.id = i + 1;
    j.submit_time = i * 50.0;
    j.num_nodes = nodes[i];
    j.runtime = runtimes[i];
    j.walltime = runtimes[i] * 2;
    j.comm_intensive = (i % 2 == 0);
    log.push_back(j);
  }
  return log;
}

TEST(LogStatsTest, BasicAggregates) {
  const LogStats s = compute_log_stats(tiny_log(), 32);
  EXPECT_EQ(s.job_count, 4u);
  EXPECT_EQ(s.min_nodes, 4);
  EXPECT_EQ(s.max_nodes, 16);
  EXPECT_DOUBLE_EQ(s.mean_nodes, 8.5);
  EXPECT_DOUBLE_EQ(s.power_of_two_fraction, 0.75);  // 6 is not a power of 2
  EXPECT_DOUBLE_EQ(s.comm_job_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.min_runtime, 100.0);
  EXPECT_DOUBLE_EQ(s.max_runtime, 400.0);
  EXPECT_DOUBLE_EQ(s.median_runtime, 250.0);
  EXPECT_DOUBLE_EQ(s.span_seconds, 150.0);
  // node-seconds: 400 + 1600 + 1800 + 6400 = 10200, over 150 s * 32 nodes.
  EXPECT_DOUBLE_EQ(s.offered_load, 10200.0 / (150.0 * 32.0));
}

TEST(LogStatsTest, EmptyLog) {
  const LogStats s = compute_log_stats({}, 32);
  EXPECT_EQ(s.job_count, 0u);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
}

TEST(LogStatsTest, ZeroMachineSkipsLoad) {
  const LogStats s = compute_log_stats(tiny_log(), 0);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
  EXPECT_EQ(s.max_nodes, 16);
}

TEST(LogStatsTest, SyntheticProfilesMatchTheirOwnStats) {
  for (const LogProfile& profile : paper_profiles()) {
    const JobLog log = generate_log(profile, 1000, 77);
    const LogStats s = compute_log_stats(log, profile.machine_nodes);
    EXPECT_NEAR(s.power_of_two_fraction, profile.pow2_fraction, 0.03)
        << profile.name;
    EXPECT_NEAR(s.offered_load, profile.target_load,
                profile.target_load * 0.3)
        << profile.name;
    EXPECT_LE(s.max_nodes, 1 << profile.max_exp) << profile.name;
  }
}

TEST(LogStatsTest, FormatMentionsKeyNumbers) {
  const std::string text = format_log_stats("Tiny", compute_log_stats(tiny_log(), 32));
  EXPECT_NE(text.find("Tiny: 4 jobs"), std::string::npos);
  EXPECT_NE(text.find("4 - 16"), std::string::npos);
  EXPECT_NE(text.find("75.0% power of two"), std::string::npos);
}

TEST(LogStatsTest, CommFractionTracksMix) {
  JobLog log = generate_log(theta_profile(), 400, 9);
  apply_mix(log, uniform_mix(Pattern::kRecursiveDoubling, 0.6, 0.5), 10);
  const LogStats s = compute_log_stats(log, 0);
  EXPECT_DOUBLE_EQ(s.comm_job_fraction, 0.6);
}

}  // namespace
}  // namespace commsched
