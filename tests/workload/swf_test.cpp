#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace commsched {
namespace {

constexpr const char* kSample =
    "; SWF header comment\n"
    ";  another comment line\n"
    "1 0 10 3600 64 -1 -1 64 7200 -1 1 5 1 -1 1 -1 -1 -1\n"
    "2 100 0 1800 128 -1 -1 128 3600 -1 1 5 1 -1 1 -1 -1 -1\n"
    "3 200 0 -1 64 -1 -1 64 3600 -1 0 5 1 -1 1 -1 -1 -1\n"   // invalid runtime
    "4 300 0 600 0 -1 -1 256 900 -1 1 5 1 -1 1 -1 -1 -1\n";  // procs via field 8

JobLog parse(const std::string& text, const SwfOptions& opts = {}) {
  std::istringstream in(text);
  return parse_swf(in, opts);
}

TEST(SwfParseTest, FieldMapping) {
  const JobLog log = parse(kSample);
  ASSERT_EQ(log.size(), 3u);  // job 3 dropped (runtime -1)
  EXPECT_EQ(log[0].id, 1);
  EXPECT_DOUBLE_EQ(log[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(log[0].runtime, 3600.0);
  EXPECT_EQ(log[0].num_nodes, 64);
  EXPECT_DOUBLE_EQ(log[0].walltime, 7200.0);
}

TEST(SwfParseTest, FallsBackToRequestedProcessors) {
  const JobLog log = parse(kSample);
  EXPECT_EQ(log[2].id, 4);
  EXPECT_EQ(log[2].num_nodes, 256);  // allocated procs was 0
}

TEST(SwfParseTest, CoresPerNodeDivides) {
  const JobLog log = parse(kSample, SwfOptions{.cores_per_node = 4});
  EXPECT_EQ(log[0].num_nodes, 16);   // 64 procs / 4
  EXPECT_EQ(log[1].num_nodes, 32);   // 128 / 4
}

TEST(SwfParseTest, CoresPerNodeRoundsUp) {
  std::istringstream in(
      "1 0 0 100 5 -1 -1 5 200 -1 1 1 1 -1 1 -1 -1 -1\n");
  const JobLog log = parse_swf(in, SwfOptions{.cores_per_node = 4});
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].num_nodes, 2);  // ceil(5/4)
}

TEST(SwfParseTest, MaxJobsTruncates) {
  const JobLog log = parse(kSample, SwfOptions{.max_jobs = 2});
  EXPECT_EQ(log.size(), 2u);
}

TEST(SwfParseTest, KeepInvalidWhenRequested) {
  const JobLog log = parse(kSample, SwfOptions{.drop_invalid = false});
  EXPECT_EQ(log.size(), 4u);
}

TEST(SwfParseTest, WalltimeNeverBelowRuntime) {
  std::istringstream in(
      "1 0 0 5000 8 -1 -1 8 100 -1 1 1 1 -1 1 -1 -1 -1\n");  // req time < runtime
  const JobLog log = parse_swf(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0].walltime, log[0].runtime);
}

TEST(SwfParseTest, MissingRequestedTimeGetsDefault) {
  std::istringstream in(
      "1 0 0 1000 8 -1 -1 8 -1 -1 1 1 1 -1 1 -1 -1 -1\n");
  const JobLog log = parse_swf(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].walltime, 1500.0);
}

TEST(SwfParseTest, MaxNodesDropsWideJobs) {
  // Cap 128: keeps jobs 1 (64) and 2 (128), drops job 4 (256 nodes).
  const JobLog log = parse(kSample, SwfOptions{.max_nodes = 128});
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].id, 1);
  EXPECT_EQ(log[1].id, 2);
}

TEST(SwfParseTest, MaxNodesAppliesAfterCoreConversion) {
  // 128 procs / 4 cores-per-node = 32 nodes, which fits a 32-node cap even
  // though the raw processor count does not.
  const JobLog log =
      parse(kSample, SwfOptions{.cores_per_node = 4, .max_nodes = 32});
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].num_nodes, 32);
}

TEST(SwfParseTest, SortBySubmitIsStable) {
  const std::string text =
      "3 200 0 100 8 -1 -1 8 200 -1 1 1 1 -1 1 -1 -1 -1\n"
      "1 100 0 100 8 -1 -1 8 200 -1 1 1 1 -1 1 -1 -1 -1\n"
      "2 100 0 100 8 -1 -1 8 200 -1 1 1 1 -1 1 -1 -1 -1\n";
  const JobLog unsorted = parse(text);
  EXPECT_EQ(unsorted[0].id, 3);  // file order preserved by default
  const JobLog sorted = parse(text, SwfOptions{.sort_by_submit = true});
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 1);  // ties at t=100 keep file order (stable)
  EXPECT_EQ(sorted[1].id, 2);
  EXPECT_EQ(sorted[2].id, 3);
}

TEST(SwfParseTest, StatsAccountForEveryParsedLine) {
  std::istringstream in(kSample);
  SwfLoadStats stats;
  const JobLog log = parse_swf(in, SwfOptions{.max_nodes = 100}, &stats);
  EXPECT_EQ(stats.parsed, 4u);
  EXPECT_EQ(stats.kept, log.size());
  EXPECT_EQ(stats.kept, 1u);              // only job 1 (64 nodes) survives
  EXPECT_EQ(stats.dropped_invalid, 1u);   // job 3, runtime -1
  EXPECT_EQ(stats.dropped_too_wide, 2u);  // jobs 2 (128) and 4 (256) > 100
  EXPECT_EQ(stats.parsed,
            stats.kept + stats.dropped_invalid + stats.dropped_too_wide);
}

TEST(SwfParseTest, StatsStopAtMaxJobs) {
  std::istringstream in(kSample);
  SwfLoadStats stats;
  const JobLog log = parse_swf(in, SwfOptions{.max_jobs = 1}, &stats);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(stats.parsed, 1u);  // the parse stopped at the cut
  EXPECT_EQ(stats.kept, 1u);
}

TEST(SwfFileTest, BundledRawTraceLoadsCleanly) {
  // The bundled raw trace is deliberately messy (out-of-order submits, one
  // too-wide job, one invalid runtime); the robustness flags must leave a
  // simulator-ready log and account for every drop.
  SwfLoadStats stats;
  const JobLog log = load_swf(
      std::string(COMMSCHED_DATA_DIR) + "/demo-raw-trace.swf",
      SwfOptions{.max_nodes = 64, .sort_by_submit = true}, &stats);
  EXPECT_EQ(stats.parsed, 12u);
  EXPECT_EQ(stats.dropped_invalid, 1u);   // record 8
  EXPECT_EQ(stats.dropped_too_wide, 1u);  // record 6, 96 > 64
  ASSERT_EQ(log.size(), 10u);
  EXPECT_EQ(stats.kept, 10u);
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log[i - 1].submit_time, log[i].submit_time);
  for (const JobRecord& j : log) {
    EXPECT_LE(j.num_nodes, 64);
    EXPECT_GT(j.runtime, 0.0);
  }
  // Record 5 (submit 380) sorts between 3 (submit 300) and 4 (submit 450).
  EXPECT_EQ(log[2].id, 3);
  EXPECT_EQ(log[3].id, 5);
  EXPECT_EQ(log[4].id, 4);
}

TEST(SwfFileTest, RawTraceRoundTripsAfterCleaning) {
  const SwfOptions opts{.max_nodes = 64, .sort_by_submit = true};
  const std::string path =
      std::string(COMMSCHED_DATA_DIR) + "/demo-raw-trace.swf";
  const JobLog cleaned = load_swf(path, opts);
  std::istringstream in(write_swf(cleaned));
  const JobLog reparsed = parse_swf(in, opts);  // sorted input: no-op sort
  ASSERT_EQ(reparsed.size(), cleaned.size());
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    EXPECT_EQ(reparsed[i].id, cleaned[i].id);
    EXPECT_DOUBLE_EQ(reparsed[i].submit_time, cleaned[i].submit_time);
    EXPECT_EQ(reparsed[i].num_nodes, cleaned[i].num_nodes);
    EXPECT_DOUBLE_EQ(reparsed[i].runtime, cleaned[i].runtime);
    EXPECT_DOUBLE_EQ(reparsed[i].walltime, cleaned[i].walltime);
  }
}

TEST(SwfParseTest, RejectsShortLines) {
  EXPECT_THROW(parse("1 2 3\n"), ParseError);
}

TEST(SwfParseTest, RejectsNonNumericFields) {
  EXPECT_THROW(parse("1 0 0 abc 64 -1 -1 64 100 -1 1 1 1 -1 1 -1 -1 -1\n"),
               ParseError);
}

TEST(SwfParseTest, EmptyStreamGivesEmptyLog) {
  EXPECT_TRUE(parse("; nothing here\n").empty());
}

TEST(SwfWriteTest, RoundTrip) {
  JobLog log;
  for (int i = 0; i < 5; ++i) {
    JobRecord j;
    j.id = i + 1;
    j.submit_time = i * 100.0;
    j.num_nodes = 1 << i;
    j.runtime = 500.0 + i;
    j.walltime = 1000.0 + i;
    log.push_back(j);
  }
  std::istringstream in(write_swf(log));
  const JobLog parsed = parse_swf(in);
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed[i].id, log[i].id);
    EXPECT_DOUBLE_EQ(parsed[i].submit_time, log[i].submit_time);
    EXPECT_EQ(parsed[i].num_nodes, log[i].num_nodes);
    EXPECT_DOUBLE_EQ(parsed[i].runtime, log[i].runtime);
    EXPECT_DOUBLE_EQ(parsed[i].walltime, log[i].walltime);
  }
}

TEST(SwfWriteTest, RoundTripWithCoresPerNode) {
  JobLog log;
  JobRecord j;
  j.id = 1;
  j.num_nodes = 16;
  j.runtime = 100.0;
  j.walltime = 200.0;
  log.push_back(j);
  std::istringstream in(write_swf(log, 4));
  const JobLog parsed = parse_swf(in, SwfOptions{.cores_per_node = 4});
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].num_nodes, 16);
}

TEST(SwfFileTest, MissingFileThrows) {
  EXPECT_THROW(load_swf("/does/not/exist.swf"), ParseError);
}

TEST(JobHelpersTest, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(JobHelpersTest, FilterAndFraction) {
  JobLog log;
  for (const int n : {1, 2, 3, 4, 6, 8}) {
    JobRecord j;
    j.num_nodes = n;
    log.push_back(j);
  }
  EXPECT_DOUBLE_EQ(power_of_two_fraction(log), 4.0 / 6.0);
  const JobLog filtered = filter_power_of_two(log);
  EXPECT_EQ(filtered.size(), 4u);
  EXPECT_DOUBLE_EQ(power_of_two_fraction(filtered), 1.0);
  EXPECT_DOUBLE_EQ(power_of_two_fraction(JobLog{}), 0.0);
}

}  // namespace
}  // namespace commsched
