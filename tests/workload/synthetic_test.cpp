#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace commsched {
namespace {

TEST(SyntheticTest, DeterministicForSameSeed) {
  const LogProfile p = theta_profile();
  const JobLog a = generate_log(p, 200, 42);
  const JobLog b = generate_log(p, 200, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_nodes, b[i].num_nodes);
    EXPECT_DOUBLE_EQ(a[i].runtime, b[i].runtime);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const LogProfile p = theta_profile();
  const JobLog a = generate_log(p, 100, 1);
  const JobLog b = generate_log(p, 100, 2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].num_nodes != b[i].num_nodes) ++differing;
  EXPECT_GT(differing, 10);
}

TEST(SyntheticTest, SubmitTimesAreSortedFromZero) {
  const JobLog log = generate_log(mira_profile(), 300, 7);
  EXPECT_DOUBLE_EQ(log.front().submit_time, 0.0);
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end(),
                             [](const JobRecord& a, const JobRecord& b) {
                               return a.submit_time < b.submit_time;
                             }));
}

TEST(SyntheticTest, WalltimeAtLeastRuntime) {
  for (const auto& profile : paper_profiles())
    for (const auto& job : generate_log(profile, 500, 11))
      EXPECT_GE(job.walltime, job.runtime) << profile.name;
}

TEST(SyntheticTest, RuntimesWithinProfileBounds) {
  const LogProfile p = intrepid_profile();
  for (const auto& job : generate_log(p, 500, 13)) {
    EXPECT_GE(job.runtime, p.min_runtime);
    EXPECT_LE(job.runtime, p.max_runtime);
  }
}

class ProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProfileSweep, MarginalsMatchPaper) {
  const LogProfile profile = paper_profiles()[static_cast<std::size_t>(GetParam())];
  const JobLog log = generate_log(profile, 1000, 99);
  ASSERT_EQ(log.size(), 1000u);

  int max_request = 0;
  for (const auto& job : log) {
    EXPECT_GE(job.num_nodes, 1);
    EXPECT_LE(job.num_nodes, profile.machine_nodes);
    max_request = std::max(max_request, job.num_nodes);
  }
  // Paper §5.1 maxima: Theta 512, Mira 16384, Intrepid up to the machine.
  EXPECT_LE(max_request, 1 << profile.max_exp);

  // Power-of-two share close to the profile's target (paper: Theta ~90%,
  // Intrepid/Mira > 99%).
  EXPECT_NEAR(power_of_two_fraction(log), profile.pow2_fraction, 0.03);
}

INSTANTIATE_TEST_SUITE_P(PaperLogs, ProfileSweep, ::testing::Values(0, 1, 2));

TEST(SyntheticTest, PaperProfileMaxRequests) {
  EXPECT_EQ(1 << theta_profile().max_exp, 512);
  EXPECT_EQ(1 << mira_profile().max_exp, 16384);
  EXPECT_EQ(1 << intrepid_profile().max_exp, 32768);
}

TEST(SyntheticTest, OfferedLoadIsNearTarget) {
  const LogProfile p = theta_profile();
  const JobLog log = generate_log(p, 1000, 5);
  double node_seconds = 0.0;
  for (const auto& job : log)
    node_seconds += static_cast<double>(job.num_nodes) * job.runtime;
  const double span = log.back().submit_time;
  ASSERT_GT(span, 0.0);
  const double load =
      node_seconds / (span * static_cast<double>(p.machine_nodes));
  // Arrival gaps are random; the realized load should be within ~25% of the
  // calibration target.
  EXPECT_NEAR(load, p.target_load, p.target_load * 0.25);
}

TEST(SyntheticTest, EmptyLogRequest) {
  EXPECT_TRUE(generate_log(theta_profile(), 0, 1).empty());
}

TEST(SyntheticTest, DefaultWalltimeUsersRequestTheQueueLimit) {
  LogProfile p = theta_profile();
  p.default_walltime_fraction = 0.5;
  p.default_walltime = 6.0 * 3600.0;
  const JobLog log = generate_log(p, 2000, 21);
  int at_default = 0;
  for (const auto& job : log) {
    EXPECT_GE(job.walltime, job.runtime);
    if (job.walltime == std::max(p.default_walltime, job.runtime))
      ++at_default;
  }
  EXPECT_NEAR(static_cast<double>(at_default) / 2000.0, 0.5, 0.05);
}

TEST(SyntheticTest, DiurnalAmplitudeModulatesArrivalDensity) {
  LogProfile p = theta_profile();
  p.diurnal_amplitude = 0.9;
  const JobLog log = generate_log(p, 4000, 23);
  // Count submissions in the "fast" half-day (sin > 0) vs the slow one.
  int fast = 0, slow = 0;
  for (const auto& job : log) {
    const double day_pos = std::fmod(job.submit_time, 86400.0);
    (day_pos < 43200.0 ? fast : slow) += 1;
  }
  // With 0.9 amplitude the fast half should carry clearly more arrivals.
  EXPECT_GT(fast, slow * 5 / 4);
}

TEST(SyntheticTest, DiurnalAmplitudeValidated) {
  LogProfile p = theta_profile();
  p.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_log(p, 10, 1), InvariantError);
}

TEST(SyntheticTest, CommunicationAttributesLeftToMixes) {
  for (const auto& job : generate_log(theta_profile(), 50, 3)) {
    EXPECT_FALSE(job.comm_intensive);
    EXPECT_DOUBLE_EQ(job.comm_fraction, 0.0);
  }
}

}  // namespace
}  // namespace commsched
