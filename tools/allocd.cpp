// allocd — the allocator-as-a-service daemon (DESIGN.md "Allocator
// service").
//
// Serves allocation/release/query requests over a unix stream socket,
// fronting one AllocatorService (immutable topology, one ClusterState,
// warm CommCache, every registered policy including sa) with the strand
// server in src/serve. Configuration comes from the same slurm.conf the
// simulator reads: JobAware / SelectTypeParameters pick the default
// policy, AllocdParameters carries the daemon knobs.
//
// Usage:
//   allocd --socket <path> [--conf <slurm.conf>] [--leaves N]
//          [--nodes-per-leaf M] [--threads N] [--queue N]
//
// The daemon builds a two-level tree (N leaf switches x M nodes), prints
// one "listening" line, and runs until a client sends kDrain (graceful:
// already-admitted requests are served before exit) or it is killed.
// Restarting with the same arguments reproduces the same service state
// machine — re-sent idempotent request ids get identical answers
// (tests/serve/daemon_kill_test.cpp).
//
// Exit status: 0 after a graceful drain, 1 on setup failure.
#include <exception>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "slurm/conf.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"

namespace {

int usage() {
  std::cerr << "usage: allocd --socket <path> [--conf <slurm.conf>] "
               "[--leaves N] [--nodes-per-leaf M] [--threads N] "
               "[--queue N]\n";
  return 1;
}

int run(int argc, char** argv) {
  std::string socket_path;
  std::string conf_path;
  int leaves = 8;
  int nodes_per_leaf = 16;
  int threads = -1;      // -1 = take from conf
  int queue_depth = -1;  // -1 = take from conf
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--socket" && (value = next()) != nullptr) {
      socket_path = value;
    } else if (arg == "--conf" && (value = next()) != nullptr) {
      conf_path = value;
    } else if (arg == "--leaves" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 1) return usage();
      leaves = static_cast<int>(*v);
    } else if (arg == "--nodes-per-leaf" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 1) return usage();
      nodes_per_leaf = static_cast<int>(*v);
    } else if (arg == "--threads" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 0) return usage();
      threads = static_cast<int>(*v);
    } else if (arg == "--queue" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 1) return usage();
      queue_depth = static_cast<int>(*v);
    } else {
      return usage();
    }
  }

  commsched::SlurmConf conf;
  if (!conf_path.empty()) conf = commsched::load_slurm_conf(conf_path);
  if (socket_path.empty()) socket_path = conf.serve.socket_path;
  if (socket_path.empty()) {
    std::cerr << "allocd: no socket path (--socket or "
                 "AllocdParameters=socket=...)\n";
    return 1;
  }

  const commsched::Tree tree =
      commsched::make_two_level_tree(leaves, nodes_per_leaf);

  commsched::serve::ServiceOptions service_options;
  service_options.default_allocator = conf.sched.allocator;
  service_options.cost_options = conf.sched.cost_options;
  service_options.sa = conf.sched.sa;

  commsched::serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.threads = threads >= 0 ? threads : conf.serve.threads;
  server_options.queue_depth = static_cast<std::size_t>(
      queue_depth >= 1 ? queue_depth : conf.serve.queue_depth);
  server_options.batch = static_cast<std::size_t>(conf.serve.batch);
  server_options.default_deadline_ms =
      static_cast<std::uint32_t>(conf.serve.default_deadline_ms);
  server_options.idle_timeout_ms =
      static_cast<std::uint32_t>(conf.serve.idle_timeout_ms);
  server_options.write_timeout_ms =
      static_cast<std::uint32_t>(conf.serve.write_timeout_ms);

  commsched::serve::Server server(tree, service_options, server_options);
  if (!server.start()) {
    std::cerr << "allocd: " << server.error() << "\n";
    return 1;
  }
  std::cout << "allocd: listening on " << socket_path << " ("
            << tree.node_count() << " nodes, default policy "
            << commsched::allocator_kind_name(conf.sched.allocator) << ")"
            << std::endl;
  server.wait_drain_requested();
  server.drain();
  const commsched::serve::ServerStats stats = server.stats();
  std::cout << "allocd: drained after " << stats.frames_in << " frames ("
            << stats.rejected << " rejected, " << stats.timeouts
            << " timed out)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "allocd: " << e.what() << "\n";
    return 1;
  }
}
