// allocd_bench — open-loop load generator for a running allocd daemon.
//
// Builds a deterministic request stream (serve/loadgen.hpp) sized to the
// daemon's machine (discovered via kQuery), replays it over one
// connection with a bounded pipeline window, and prints the latency
// histogram percentiles plus the per-status outcome counts.
//
// Usage:
//   allocd_bench --socket <path> [--requests N] [--seed S] [--window W]
//                [--rate R] [--burstiness B] [--deadline-ms D]
//                [--allocator <name>]
//
// --rate > 0 paces sends open-loop at R requests/sec (with optional
// sinusoidal burstiness in [0,1)); the default replays as fast as the
// window allows. Exit status: 0 when every request got a reply, 1 on
// connection failure or bad arguments.
#include <exception>
#include <iostream>
#include <string>

#include "core/allocator_factory.hpp"
#include "serve/loadgen.hpp"
#include "util/strings.hpp"

namespace {

int usage() {
  std::cerr << "usage: allocd_bench --socket <path> [--requests N] "
               "[--seed S] [--window W] [--rate R] [--burstiness B] "
               "[--deadline-ms D] [--allocator <name>]\n";
  return 1;
}

int run(int argc, char** argv) {
  std::string socket_path;
  commsched::serve::LoadSpec spec;
  commsched::serve::ReplayOptions replay_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--socket" && (value = next()) != nullptr) {
      socket_path = value;
    } else if (arg == "--requests" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 1) return usage();
      spec.requests = static_cast<std::size_t>(*v);
    } else if (arg == "--seed" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v) return usage();
      spec.seed = static_cast<std::uint64_t>(*v);
    } else if (arg == "--window" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 1) return usage();
      replay_options.window = static_cast<std::size_t>(*v);
    } else if (arg == "--rate" && (value = next()) != nullptr) {
      const auto v = commsched::parse_double(value);
      if (!v || *v < 0.0) return usage();
      spec.arrival_rate = *v;
      replay_options.paced = *v > 0.0;
    } else if (arg == "--burstiness" && (value = next()) != nullptr) {
      const auto v = commsched::parse_double(value);
      if (!v || *v < 0.0 || *v >= 1.0) return usage();
      spec.burstiness = *v;
    } else if (arg == "--deadline-ms" && (value = next()) != nullptr) {
      const auto v = commsched::parse_int(value);
      if (!v || *v < 0) return usage();
      spec.deadline_ms = static_cast<std::uint32_t>(*v);
    } else if (arg == "--allocator" && (value = next()) != nullptr) {
      const auto kind = commsched::allocator_kind_from_string(value);
      if (!kind) return usage();
      spec.allocator = static_cast<std::uint8_t>(*kind);
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();

  commsched::serve::Client client;
  if (!client.connect(socket_path)) {
    std::cerr << "allocd_bench: " << client.error() << "\n";
    return 1;
  }
  commsched::serve::Request query;
  query.type = commsched::serve::MsgType::kQuery;
  query.req_id = 0;
  commsched::serve::Reply reply;
  if (!client.call(query, reply, 10000)) {
    std::cerr << "allocd_bench: query failed: " << client.error() << "\n";
    return 1;
  }
  const int machine_nodes = static_cast<int>(reply.total_nodes);

  const commsched::serve::LoadStream stream =
      commsched::serve::build_stream(spec, machine_nodes);
  const commsched::serve::ReplayResult result =
      commsched::serve::replay(client, stream, replay_options);

  const commsched::LatencyHistogram& h = result.latency;
  std::cout << "allocd_bench: " << stream.requests.size() << " requests to "
            << socket_path << " (" << machine_nodes << " nodes)\n"
            << "  latency us: p50=" << h.percentile(50.0)
            << " p95=" << h.percentile(95.0) << " p99=" << h.percentile(99.0)
            << " max=" << h.max() << "\n"
            << "  outcomes: ok=" << result.ok << " no_fit=" << result.no_fit
            << " rejected=" << result.rejected
            << " timeout=" << result.timeouts << " bad=" << result.bad
            << " other=" << result.other
            << " io_errors=" << result.io_errors << "\n";
  if (!result.complete) {
    std::cerr << "allocd_bench: incomplete replay: " << client.error()
              << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "allocd_bench: " << e.what() << "\n";
    return 1;
  }
}
