// campaign_merge — combine per-shard (or resumed) campaign stream files
// into the outputs a single uninterrupted process would produce
// (DESIGN.md "Campaign persistence, sharding & resume").
//
// Usage:
//   campaign_merge <out_prefix> <stream.jsonl> [<stream.jsonl> ...]
//
// Validates that every stream carries the same spec name / fingerprint /
// cell count and that the shards cover the whole grid exactly once, then
// writes (atomically):
//   <out_prefix>.jsonl  canonical stream (deterministic payloads only — no
//                       wall times), byte-identical for {1 process,
//                       N shards, kill+resume} at any thread count
//   <out_prefix>.csv    the long-form per-cell table (exp::campaign_table)
//   <out_prefix>.json   the campaign JSON document (exp::campaign_json)
//
// Exit status: 0 on success, 1 on validation/IO failure (message on
// stderr). The CI sharded-parity job diffs these outputs across shard
// layouts.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "exp/emit.hpp"
#include "exp/sink.hpp"
#include "util/file_io.hpp"

namespace {

int run(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: campaign_merge <out_prefix> <stream.jsonl> "
                 "[<stream.jsonl> ...]\n";
    return 1;
  }
  const std::string out_prefix = argv[1];
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) paths.emplace_back(argv[i]);

  const commsched::exp::MergedCampaign merged =
      commsched::exp::merge_streams(paths);

  commsched::write_file_atomic(
      out_prefix + ".jsonl",
      commsched::exp::canonical_jsonl(merged.header, merged.result));
  const commsched::TextTable table =
      commsched::exp::campaign_table(merged.result);
  if (!table.write_csv(out_prefix + ".csv")) {
    std::cerr << "campaign_merge: failed to write " << out_prefix << ".csv\n";
    return 1;
  }
  commsched::write_file_atomic(out_prefix + ".json",
                               commsched::exp::campaign_json(merged.result));

  std::cout << "campaign_merge: " << merged.result.cells.size() << "/"
            << merged.header.total_cells << " cells of '"
            << merged.header.spec_name << "' from " << paths.size()
            << " stream(s) -> " << out_prefix << ".{jsonl,csv,json}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "campaign_merge: " << e.what() << "\n";
    return 1;
  }
}
