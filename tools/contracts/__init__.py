# tools/contracts — call-graph-aware effect-contract analyzer.
#
# See DESIGN.md "Effect contracts" and tools/contracts/analyze.py --help.
