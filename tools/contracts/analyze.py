#!/usr/bin/env python3
"""Call-graph-aware contract analyzer for commsched.

Quick start (from the repo root, after any cmake configure):

    python3 tools/contracts/analyze.py --build build

Extracts a whole-program call graph plus per-function effect facts from
src/ and enforces three contract families transitively (DESIGN.md "Effect
contracts"): no-alloc below `// hot-path: no-alloc` roots, thread-safety
below concurrent entry points, and determinism inside src/{sched,core,
collectives,exp}. Emits a machine-readable report (contracts_report.json)
plus a human summary, and compares findings against the checked-in
baseline — new violations exit nonzero, which is how the ctest entry and
the CI `contracts` job gate merges.

The compile database (--build <dir>/compile_commands.json) supplies the
translation-unit list; headers are discovered next to their sources. When
no build directory exists yet the analyzer falls back to globbing src/
directly, so `--build` only gates on configured trees in CI (where the
database also pins exactly what is compiled).

Exit codes: 0 clean (or only baselined findings), 1 new violations,
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from callgraph import build_program  # noqa: E402
from checks import (check_determinism, check_no_alloc,  # noqa: E402
                    check_thread_safety)
from model import Effect  # noqa: E402
from parser import parse_program  # noqa: E402

SCHEMA_VERSION = 1


def discover_sources(repo_root: Path, build_dir: Path | None) -> list[Path]:
    """src/ translation units + headers. The compile database, when
    present, is authoritative for .cpp files (it reflects what the build
    actually compiles); headers are globbed because effects live in inline
    definitions too."""
    sources: set[Path] = set()
    if build_dir is not None:
        db = build_dir / "compile_commands.json"
        if not db.is_file():
            raise SystemExit(
                f"analyze.py: no compile_commands.json under {build_dir} — "
                "run `cmake -B <build> -S .` first (exit 2)")
        for entry in json.loads(db.read_text()):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = Path(entry["directory"]) / p
            p = p.resolve()
            try:
                rel = p.relative_to(repo_root)
            except ValueError:
                continue
            if rel.parts[0] == "src" and p.suffix == ".cpp":
                sources.add(p)
    else:
        sources.update((repo_root / "src").rglob("*.cpp"))
    sources.update((repo_root / "src").rglob("*.hpp"))
    return sorted(sources)


def analyze(repo_root: Path, files: list[Path]) -> dict:
    tus = parse_program(files, repo_root)
    prog = build_program(tus)

    na_viol, na_trust, na_roots = check_no_alloc(prog)
    ts_viol, ts_trust, ts_roots = check_thread_safety(prog)
    dt_viol, dt_trust, dt_scope = check_determinism(prog)

    violations = na_viol + ts_viol + dt_viol
    violations.sort(key=lambda v: (v.rule, v.function, v.location))
    trusted = na_trust + ts_trust + dt_trust
    trusted.sort(key=lambda t: (t.family, t.function, t.location))

    effect_counts: dict[str, int] = {}
    for fn in prog.functions.values():
        for fact in fn.facts:
            effect_counts[fact.effect.value] = \
                effect_counts.get(fact.effect.value, 0) + 1

    return {
        "schema": SCHEMA_VERSION,
        "stats": {
            "files": len(files),
            "functions": len(prog.functions),
            "call_edges": sum(len(v) for v in prog.edges.values()),
            "classes": len(prog.classes),
            "effect_facts": dict(sorted(effect_counts.items())),
        },
        "roots": {
            "no-alloc": na_roots,
            "thread-safe": ts_roots,
            "determinism-scope": list(dt_scope),
        },
        "violations": [v.to_json() for v in violations],
        "trusted": [t.to_json() for t in trusted],
    }


def load_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("violations", []))


def human_summary(report: dict, new_keys: set[str], stale: set[str],
                  out=sys.stdout) -> None:
    s = report["stats"]
    print(f"contracts: {s['files']} files, {s['functions']} functions, "
          f"{s['call_edges']} call edges", file=out)
    print(f"  roots: {len(report['roots']['no-alloc'])} hot-path, "
          f"{len(report['roots']['thread-safe'])} thread entry points; "
          f"determinism scope {', '.join(report['roots']['determinism-scope'])}",
          file=out)
    print(f"  trusted escapes: {len(report['trusted'])} "
          "(inventoried in the report)", file=out)
    viols = report["violations"]
    if not viols:
        print("  violations: none", file=out)
    for v in viols:
        marker = "NEW " if v["key"] in new_keys else "baselined "
        print(f"  {marker}[{v['rule']}] {v['location']}: {v['function']}",
              file=out)
        print(f"      {v['message']}", file=out)
        if len(v["chain"]) > 1:
            print("      via " + "\n        -> ".join(v["chain"]), file=out)
    if stale:
        print(f"  note: {len(stale)} baseline entr"
              f"{'y is' if len(stale) == 1 else 'ies are'} no longer "
              "firing — prune the baseline:", file=out)
        for k in sorted(stale):
            print(f"    {k}", file=out)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build", type=Path, default=None,
                    help="build dir containing compile_commands.json "
                         "(default: glob src/ directly)")
    ap.add_argument("--repo-root", type=Path,
                    default=Path(__file__).resolve().parent.parent.parent,
                    help="repository root (tests point this at fixture trees)")
    ap.add_argument("--output", type=Path, default=None,
                    help="write the JSON report here "
                         "(default: <repo-root>/contracts_report.json)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline file of accepted violation keys (default: "
                         "tools/contracts/baseline.json under --repo-root; "
                         "missing file = empty baseline)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current findings")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the human summary (exit code still gates)")
    args = ap.parse_args(argv)

    repo_root = args.repo_root.resolve()
    if not (repo_root / "src").is_dir():
        print(f"analyze.py: {repo_root} has no src/ directory",
              file=sys.stderr)
        return 2
    build_dir = args.build
    if build_dir is not None and not build_dir.is_absolute():
        build_dir = repo_root / build_dir

    files = discover_sources(repo_root, build_dir)
    report = analyze(repo_root, files)

    baseline_path = args.baseline if args.baseline is not None else \
        repo_root / "tools" / "contracts" / "baseline.json"
    baseline = load_baseline(baseline_path)
    found_keys = {v["key"] for v in report["violations"]}
    new_keys = found_keys - baseline
    stale = baseline - found_keys
    report["baseline"] = {
        "path": str(baseline_path),
        "entries": len(baseline),
        "new": sorted(new_keys),
        "stale": sorted(stale),
    }

    out_path = args.output if args.output is not None else \
        repo_root / "contracts_report.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")

    if args.update_baseline:
        baseline_path.write_text(json.dumps(
            {"comment": "Accepted contract violations; keep at zero — prefer "
                        "fixing or `// contract-trusted:` with a reason.",
             "violations": sorted(found_keys)}, indent=2) + "\n")
        print(f"analyze.py: baseline updated ({len(found_keys)} entries)",
              file=sys.stderr)

    if not args.quiet:
        human_summary(report, new_keys, stale)
        print(f"analyze.py: report written to {out_path}", file=sys.stderr)

    if new_keys and not args.update_baseline:
        print(f"analyze.py: {len(new_keys)} new contract violation(s) not in "
              f"the baseline ({baseline_path})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
