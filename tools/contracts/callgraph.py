"""Whole-program call graph + bottom-up effect propagation.

Resolution policy (DESIGN.md "Effect contracts"):

  * Calls resolve by simple name against the index of repo functions. A
    textual frontend cannot type every receiver, so resolution
    over-approximates: when several repo functions share a name, the call
    links to all of them. Inert functions (no facts, no repo calls) absorb
    the over-approximation harmlessly; the escape hatch covers the rest.
  * When the receiver's declared type is known and names a repo class, only
    that class's method (and, walking up, its bases') is linked.
  * Virtual dispatch: a call to a name that any repo class declares
    `virtual` resolves to *every* override of that name in the program —
    the `Allocator::select_into` policy. A hot path that calls through a
    base pointer is only allocation-free if every implementation is.
  * Qualified `std::` (or otherwise unknown external) calls that the effect
    tables did not classify are assumed effect-free; the tables in
    parser.py carry the std functions that matter (make_unique, to_string,
    clock reads, printf-family, ...).

Propagation is a fixpoint over the condensed graph: a function's transitive
effect set is its direct facts plus the union of its callees', with
`contract-trusted:` functions contributing nothing to the family they are
trusted for (the trust covers their whole subtree and is inventoried).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from model import ClassInfo, Effect, Function, TranslationUnit


@dataclass
class Program:
    functions: dict[str, Function] = field(default_factory=dict)  # key()->fn
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    by_simple_name: dict[str, list[str]] = field(
        default_factory=lambda: defaultdict(list))
    by_class_method: dict[tuple[str, str], list[str]] = field(
        default_factory=lambda: defaultdict(list))
    #: method simple name -> declared virtual somewhere
    virtual_names: set[str] = field(default_factory=set)
    #: resolved call edges: caller key -> [(callee key, line), ...]
    edges: dict[str, list[tuple[str, int]]] = field(
        default_factory=lambda: defaultdict(list))

    def function_by_qualified(self, qualified: str) -> list[Function]:
        return [f for f in self.functions.values()
                if f.qualified_name == qualified]


def build_program(tus: list[TranslationUnit]) -> Program:
    prog = Program()
    for tu in tus:
        for cls in tu.classes:
            existing = prog.classes.get(cls.qualified_name)
            if existing is None:
                prog.classes[cls.qualified_name] = cls
            else:
                # header parsed once per TU set; merge defensively
                existing.virtual_methods |= cls.virtual_methods
                existing.member_types.update(cls.member_types)
        for fn in tu.functions:
            key = fn.key()
            if key in prog.functions:
                continue
            prog.functions[key] = fn
            prog.by_simple_name[fn.simple_name].append(key)
            if fn.class_name:
                cls_simple = fn.class_name.split("::")[-1]
                prog.by_class_method[(cls_simple, fn.simple_name)].append(key)
    for cls in prog.classes.values():
        prog.virtual_names |= cls.virtual_methods
    _resolve_edges(prog)
    return prog


def _class_chain(prog: Program, class_simple: str) -> list[str]:
    """Simple names of `class_simple` and its transitive bases."""
    out: list[str] = []
    seen: set[str] = set()
    queue = [class_simple]
    while queue:
        c = queue.pop()
        if c in seen:
            continue
        seen.add(c)
        out.append(c)
        for cls in prog.classes.values():
            if cls.qualified_name.split("::")[-1] == c:
                queue.extend(cls.bases)
    return out


def _overrides_of(prog: Program, name: str) -> list[str]:
    """Every function key implementing virtual method `name`."""
    return [k for k in prog.by_simple_name.get(name, ())
            if prog.functions[k].class_name is not None]


#: Namespace qualifiers that mark a callee as external to the repo. The
#: parser's effect tables already classify the std calls that matter
#: (make_unique, ::now, printf, ...); everything else under these is
#: assumed effect-free rather than name-collided with repo functions
#: (std::filesystem::path() must not resolve to FlowNetwork::path).
EXTERNAL_NS = frozenset({
    "std", "filesystem", "fs", "chrono", "this_thread", "ranges", "views",
    "numbers", "literals", "string_literals", "chrono_literals",
})

#: Method names every std container/string/smart-pointer has. A member call
#: on a receiver whose type the parser could not determine is overwhelmingly
#: a std call, not a repo method that happens to share the name — without
#: this, `sparse_slot_.find(...)` would resolve to JsonValue::find and every
#: `.size()` to ThreadPool::size. Repo receivers keep full resolution via
#: receiver typing (member/local/param types are tracked).
STD_CONTAINER_METHODS = frozenset({
    "size", "empty", "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "find", "count", "contains", "at", "clear", "erase", "front", "back",
    "data", "c_str", "str", "substr", "length", "swap", "reset", "get",
    "release", "value", "has_value", "value_or", "first", "second", "top",
    "pop", "pop_back", "pop_front", "lower_bound", "upper_bound",
    "equal_range", "load", "store", "fetch_add", "fetch_sub", "exchange",
})


def _chain_methods(prog: Program, class_simple: str,
                   name: str) -> tuple[list[str], bool]:
    """Keys of `name` defined on `class_simple` or its bases, plus whether
    any class in that chain declares `name` virtual."""
    targets: list[str] = []
    virtual = False
    for c in _class_chain(prog, class_simple):
        targets.extend(prog.by_class_method.get((c, name), ()))
        for cls in prog.classes.values():
            if cls.qualified_name.split("::")[-1] == c \
                    and name in cls.virtual_methods:
                virtual = True
    return targets, virtual


def _resolve_call(prog: Program, fn: Function, call) -> list[str]:
    """Candidate callee keys, mirroring C++ name lookup closely enough:

    1. an external-namespace qualifier means not-a-repo-function;
    2. a typed receiver (or a repo-class qualifier) restricts lookup to
       that class chain — widened to every override if the chain declares
       the name virtual (the Allocator::select_into policy);
    3. an unqualified call inside a class resolves to the enclosing class
       chain when it defines the name (member lookup shadows globals);
    4. otherwise, a virtual name anywhere resolves to all overrides, and
       anything else falls back to every repo function of that name.
    """
    if call.qualifier in EXTERNAL_NS:
        return []
    repo_class_simple = {c.qualified_name.split("::")[-1]
                         for c in prog.classes.values()}
    # 2: receiver-typed / class-qualified narrowing. An `auto` receiver
    # type tells us nothing and counts as unknown.
    recv_class = ""
    head = call.receiver_type.split("<")[0]
    type_known = bool(call.receiver_type) and "auto" not in head.split()
    if type_known:
        for cls_simple in repo_class_simple:
            if cls_simple in head:
                recv_class = cls_simple
                break
        if not recv_class:
            return []  # typed receiver naming no repo class: external
    if not recv_class and call.qualifier in repo_class_simple:
        recv_class = call.qualifier
    if recv_class:
        targets, virtual = _chain_methods(prog, recv_class, call.name)
        if virtual:
            return _overrides_of(prog, call.name)
        if targets:
            return targets
        # repo class without such a method: an inherited/external helper —
        # fall through to the global policies below.
    # 3: member lookup in the enclosing class shadows globals
    if not call.qualifier and not call.receiver_type and fn.class_name:
        own_simple = fn.class_name.split("::")[-1]
        targets, virtual = _chain_methods(prog, own_simple, call.name)
        if virtual:
            return _overrides_of(prog, call.name)
        if targets:
            return targets
    # 4: global fallback — but a member call on an unknown-typed receiver
    # with a std-container method name is std, not a repo name collision
    if call.qualifier and not type_known \
            and call.name in STD_CONTAINER_METHODS:
        return []
    if call.name in prog.virtual_names:
        return _overrides_of(prog, call.name)
    return list(prog.by_simple_name.get(call.name, ()))


def _resolve_edges(prog: Program) -> None:
    for key, fn in prog.functions.items():
        for call in fn.calls:
            for t in dict.fromkeys(_resolve_call(prog, fn, call)):
                if t != key:  # self-recursion adds nothing
                    prog.edges[key].append((t, call.line))


def propagate_effects(prog: Program, family_trust: str) -> dict[str, set[Effect]]:
    """Transitive effect set per function key, with functions trusted for
    `family_trust` contributing (and propagating) nothing."""
    # reverse topological-ish fixpoint; graphs are small (<5k nodes)
    eff: dict[str, set[Effect]] = {}
    for key, fn in prog.functions.items():
        if family_trust in fn.annotations.trusted:
            eff[key] = set()
        else:
            eff[key] = {f.effect for f in fn.facts}
    changed = True
    while changed:
        changed = False
        for key in prog.functions:
            if family_trust in prog.functions[key].annotations.trusted:
                continue
            cur = eff[key]
            before = len(cur)
            for callee, _line in prog.edges.get(key, ()):
                cur |= eff[callee]
            if len(cur) != before:
                changed = True
    return eff


def reachable_from(prog: Program, roots: list[str],
                   family_trust: str) -> dict[str, tuple[str, int] | None]:
    """BFS over call edges from `roots` (function keys), stopping at
    functions trusted for `family_trust`. Returns reached key ->
    (predecessor key, call line) (None for roots), enabling chain
    reconstruction."""
    pred: dict[str, tuple[str, int] | None] = {}
    queue: deque[str] = deque()
    for r in roots:
        if r not in pred:
            pred[r] = None
            queue.append(r)
    while queue:
        cur = queue.popleft()
        fn = prog.functions[cur]
        if family_trust in fn.annotations.trusted:
            continue  # trusted: subtree exempt
        for callee, line in prog.edges.get(cur, ()):
            if callee not in pred:
                pred[callee] = (cur, line)
                queue.append(callee)
    return pred


def call_chain(prog: Program, pred: dict[str, tuple[str, int] | None],
               key: str) -> list[str]:
    """Root → ... → key, human-readable."""
    chain: list[str] = []
    cur: str | None = key
    while cur is not None:
        fn = prog.functions[cur]
        chain.append(f"{fn.qualified_name} ({fn.location()})")
        step = pred.get(cur)
        cur = step[0] if step else None
    chain.reverse()
    return chain


def is_inert(prog: Program, key: str) -> bool:
    """No facts and no resolved repo calls: trivially effect-free, exempt
    from the annotation-coverage requirement."""
    fn = prog.functions[key]
    return not fn.facts and not prog.edges.get(key)
