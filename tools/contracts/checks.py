"""The three transitive contract families (DESIGN.md "Effect contracts").

no-alloc      roots = every function annotated `// hot-path: no-alloc`.
              Everything reachable must (a) carry no allocation facts and
              (b) be annotated itself unless it is provably inert (no facts,
              no repo calls). `contract-trusted: no-alloc` prunes a subtree;
              a trusted comment on the fact's own line (or the two lines
              above) waives just that fact. Every waiver is inventoried.

thread-safe   roots = the campaign worker entry (run_cell), the thread-pool
              worker loop, and every const method of CostModel (the class
              is documented as share-across-threads). Reachable functions
              must be annotated `// thread-safe:`, or carry no unjustified
              static state and belong to no class with unjustified mutable
              members — i.e. be provably const/stateless.

determinism   scope = functions *defined* under src/sched, src/core,
              src/collectives, src/exp. Nothing there (nor anything they
              transitively call) may read wall clocks, use nondeterministic
              random sources, perform locale-dependent parsing/formatting,
              or iterate unordered containers — all of those leak
              run-to-run or platform-to-platform differences into paths
              whose outputs PR 5 locked down byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from callgraph import (Program, call_chain, is_inert, reachable_from)
from model import (Effect, FAMILY_DETERMINISM, FAMILY_NO_ALLOC,
                   FAMILY_THREAD_SAFE, Function)

DETERMINISM_DIRS = ("src/sched/", "src/core/", "src/collectives/",
                    "src/exp/")

ALLOC_EFFECTS = {Effect.ALLOC, Effect.ALLOC_AMORTIZED}
DETERMINISM_EFFECTS = {
    Effect.READS_CLOCK: "determinism-wallclock",
    Effect.USES_RAND: "determinism-rand",
    Effect.USES_LOCALE: "determinism-locale",
    Effect.UNORDERED_ITER: "determinism-unordered-iter",
}


@dataclass
class Violation:
    rule: str
    function: str          # qualified name
    location: str          # file:line
    message: str
    chain: list[str] = field(default_factory=list)
    evidence: list[str] = field(default_factory=list)

    def key(self) -> str:
        file = self.location.rsplit(":", 1)[0]
        return f"{self.rule}|{self.function}|{file}"

    def to_json(self) -> dict:
        return {"rule": self.rule, "function": self.function,
                "location": self.location, "message": self.message,
                "chain": self.chain, "evidence": self.evidence,
                "key": self.key()}


@dataclass
class TrustEntry:
    function: str
    location: str
    family: str
    reason: str
    granularity: str  # "function" (subtree pruned) | "fact" (one line waived)
    evidence: str = ""

    def to_json(self) -> dict:
        return {"function": self.function, "location": self.location,
                "family": self.family, "reason": self.reason,
                "granularity": self.granularity, "evidence": self.evidence}


def _effective(prog: Program) -> dict[str, dict]:
    """Annotations merged across declaration/definition records sharing a
    qualified name (lint puts the mark on the definition; hierarchy roots
    like Allocator::select_into carry it on the declaration)."""
    merged: dict[str, dict] = {}
    for fn in prog.functions.values():
        m = merged.setdefault(fn.qualified_name,
                              {"hot_path": False, "thread_safe": None,
                               "trusted": {}})
        m["hot_path"] |= fn.annotations.hot_path
        if fn.annotations.thread_safe is not None:
            m["thread_safe"] = fn.annotations.thread_safe
        m["trusted"].update(fn.annotations.trusted)
    return merged


def _family_of_effect(effect: Effect) -> str:
    if effect in ALLOC_EFFECTS:
        return FAMILY_NO_ALLOC
    if effect is Effect.MUTATES_STATIC:
        return FAMILY_THREAD_SAFE
    if effect in DETERMINISM_EFFECTS:
        return FAMILY_DETERMINISM
    return ""


def _fact_violations(fn: Function, effects: set[Effect], family: str,
                     trusted: list[TrustEntry]) -> list:
    """Facts of `fn` within `effects`, splitting off fact-level waivers."""
    out = []
    for fact in fn.facts:
        if fact.effect not in effects:
            continue
        if fact.trusted is not None and _family_of_effect(
                fact.effect) == family:
            trusted.append(TrustEntry(
                function=fn.qualified_name,
                location=f"{fn.file}:{fact.line}", family=family,
                reason=fact.trusted, granularity="fact",
                evidence=fact.evidence))
            continue
        out.append(fact)
    return out


# ---------------------------------------------------------------------------
# no-alloc
# ---------------------------------------------------------------------------

def check_no_alloc(prog: Program) -> tuple[list[Violation], list[TrustEntry],
                                           list[str]]:
    merged = _effective(prog)
    roots = sorted(k for k, fn in prog.functions.items()
                   if merged[fn.qualified_name]["hot_path"] and fn.has_body)
    pred = reachable_from(prog, roots, FAMILY_NO_ALLOC)
    violations: list[Violation] = []
    trusted: list[TrustEntry] = []
    seen_trust: set[str] = set()
    for key in sorted(pred):
        fn = prog.functions[key]
        ann = merged[fn.qualified_name]
        if FAMILY_NO_ALLOC in ann["trusted"]:
            if fn.qualified_name not in seen_trust:
                seen_trust.add(fn.qualified_name)
                trusted.append(TrustEntry(
                    function=fn.qualified_name, location=fn.location(),
                    family=FAMILY_NO_ALLOC,
                    reason=ann["trusted"][FAMILY_NO_ALLOC],
                    granularity="function"))
            continue
        if not fn.has_body:
            continue
        chain = call_chain(prog, pred, key)
        for fact in _fact_violations(fn, ALLOC_EFFECTS, FAMILY_NO_ALLOC,
                                     trusted):
            violations.append(Violation(
                rule="no-alloc", function=fn.qualified_name,
                location=f"{fn.file}:{fact.line}",
                message=f"{fact.effect.value} inside a hot-path subtree: "
                        f"{fact.evidence}",
                chain=chain,
                evidence=[f"{fn.file}:{fact.line}: {fact.evidence}"]))
        if not ann["hot_path"] and not is_inert(prog, key):
            violations.append(Violation(
                rule="no-alloc-unannotated", function=fn.qualified_name,
                location=fn.location(),
                message="reachable from a `// hot-path: no-alloc` root but "
                        "not annotated (and not provably inert): annotate "
                        "it so the lexical lint also guards its body",
                chain=chain))
    root_names = sorted({prog.functions[r].qualified_name for r in roots})
    return violations, trusted, root_names


# ---------------------------------------------------------------------------
# thread-safety
# ---------------------------------------------------------------------------

def thread_roots(prog: Program) -> list[str]:
    roots = []
    for key, fn in prog.functions.items():
        if not fn.has_body:
            continue
        cls_simple = (fn.class_name or "").split("::")[-1]
        if fn.simple_name == "run_cell":
            roots.append(key)
        elif cls_simple == "ThreadPool" and fn.simple_name == "worker_loop":
            roots.append(key)
        elif cls_simple == "CostModel" and fn.is_const_method:
            roots.append(key)
        # The allocator daemon's request handlers run on pool workers and
        # per-connection reader threads: everything they reach must hold
        # the same no-unjustified-static discipline.
        elif cls_simple == "Server" and fn.simple_name in (
                "run_strand", "reader_loop", "admit", "write_reply"):
            roots.append(key)
        elif cls_simple == "AllocatorService" and fn.simple_name == "handle":
            roots.append(key)
    return sorted(roots)


def check_thread_safety(prog: Program) -> tuple[list[Violation],
                                                list[TrustEntry], list[str]]:
    merged = _effective(prog)
    roots = thread_roots(prog)
    pred = reachable_from(prog, roots, FAMILY_THREAD_SAFE)
    violations: list[Violation] = []
    trusted: list[TrustEntry] = []
    seen_trust: set[str] = set()
    flagged_classes: set[str] = set()
    for key in sorted(pred):
        fn = prog.functions[key]
        ann = merged[fn.qualified_name]
        if FAMILY_THREAD_SAFE in ann["trusted"]:
            if fn.qualified_name not in seen_trust:
                seen_trust.add(fn.qualified_name)
                trusted.append(TrustEntry(
                    function=fn.qualified_name, location=fn.location(),
                    family=FAMILY_THREAD_SAFE,
                    reason=ann["trusted"][FAMILY_THREAD_SAFE],
                    granularity="function"))
            continue
        if ann["thread_safe"] is not None:
            continue  # explicitly argued; the reason is its documentation
        if not fn.has_body:
            continue
        chain = call_chain(prog, pred, key)
        for fact in _fact_violations(fn, {Effect.MUTATES_STATIC},
                                     FAMILY_THREAD_SAFE, trusted):
            violations.append(Violation(
                rule="thread-safe-static", function=fn.qualified_name,
                location=f"{fn.file}:{fact.line}",
                message="unjustified non-const static state reachable from "
                        f"a concurrent entry point: {fact.evidence}",
                chain=chain,
                evidence=[f"{fn.file}:{fact.line}: {fact.evidence}"]))
        # const methods of classes with unjustified mutable members are not
        # provably stateless; flag once per class.
        if fn.is_const_method and fn.class_name:
            cls = prog.classes.get(fn.class_name)
            if cls is not None and cls.unjustified_mutables \
                    and fn.class_name not in flagged_classes:
                flagged_classes.add(fn.class_name)
                members = ", ".join(m for m, _ in cls.unjustified_mutables)
                violations.append(Violation(
                    rule="thread-safe-mutable", function=fn.qualified_name,
                    location=fn.location(),
                    message=f"const method reachable concurrently, but class "
                            f"{fn.class_name} has mutable member(s) without "
                            f"a `// workspace:` justification: {members}",
                    chain=chain,
                    evidence=[f"{cls.file}:{line}: mutable {m}"
                              for m, line in cls.unjustified_mutables]))
    root_names = sorted({prog.functions[r].qualified_name for r in roots})
    return violations, trusted, root_names


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def check_determinism(prog: Program) -> tuple[list[Violation],
                                              list[TrustEntry], list[str]]:
    merged = _effective(prog)
    scope = sorted(k for k, fn in prog.functions.items()
                   if fn.has_body and fn.file.startswith(DETERMINISM_DIRS))
    pred = reachable_from(prog, scope, FAMILY_DETERMINISM)
    violations: list[Violation] = []
    trusted: list[TrustEntry] = []
    seen_trust: set[str] = set()
    seen_offender: set[tuple[str, str, int]] = set()
    for key in sorted(pred):
        fn = prog.functions[key]
        ann = merged[fn.qualified_name]
        if FAMILY_DETERMINISM in ann["trusted"]:
            if fn.qualified_name not in seen_trust:
                seen_trust.add(fn.qualified_name)
                trusted.append(TrustEntry(
                    function=fn.qualified_name, location=fn.location(),
                    family=FAMILY_DETERMINISM,
                    reason=ann["trusted"][FAMILY_DETERMINISM],
                    granularity="function"))
            continue
        if not fn.has_body:
            continue
        chain = call_chain(prog, pred, key)
        for fact in _fact_violations(fn, set(DETERMINISM_EFFECTS),
                                     FAMILY_DETERMINISM, trusted):
            dedup = (fn.qualified_name, fact.effect.value, fact.line)
            if dedup in seen_offender:
                continue
            seen_offender.add(dedup)
            in_scope = fn.file.startswith(DETERMINISM_DIRS)
            where = "in" if in_scope else "reachable from"
            violations.append(Violation(
                rule=DETERMINISM_EFFECTS[fact.effect],
                function=fn.qualified_name,
                location=f"{fn.file}:{fact.line}",
                message=f"{fact.effect.value} {where} a determinism-scoped "
                        f"directory: {fact.evidence}",
                chain=chain,
                evidence=[f"{fn.file}:{fact.line}: {fact.evidence}"]))
    return violations, trusted, list(DETERMINISM_DIRS)
