"""Data model for the contract analyzer: functions, effects, call sites.

The analyzer (DESIGN.md "Effect contracts") reduces every translation unit
to a set of Function records. Each record carries

  * identity   — qualified name, file, line, enclosing class;
  * contracts  — the annotations attached to the definition
                 (`hot-path: no-alloc`, `thread-safe:`, `contract-trusted:`);
  * facts      — the *direct* effects its body performs (Effect values,
                 each with the line and a short evidence string);
  * calls      — the call sites its body contains, to be resolved against
                 the whole-program index by callgraph.py.

Effects deliberately over-approximate: a fact means "the analyzer cannot
prove this body avoids the effect", not "the effect certainly happens at
runtime". The `contract-trusted:` escape hatch exists exactly for the cases
where a human argues the over-approximation away (warm caches, reserved
capacity, audit-gated paths); every use is inventoried in the report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Effect(enum.Enum):
    """Direct per-function effect facts extracted from a body."""

    #: Unconditional heap allocation: an owning container constructed by
    #: value, make_unique/make_shared, std::to_string, string concatenation.
    ALLOC = "allocates"
    #: Amortized / capacity-dependent allocation: growth calls
    #: (push_back, insert, resize, ...) on an allocating container. Clean in
    #: a warm steady state with reserved capacity, but only a human can
    #: argue that — hot-path code must trust or restructure these.
    ALLOC_AMORTIZED = "allocates-amortized"
    #: Acquires a lock (std::mutex & friends). Not a violation by itself;
    #: recorded because it is positive thread-safety evidence and a latency
    #: hazard worth seeing in hot-path reports.
    TAKES_LOCK = "takes-lock"
    #: Declares (and therefore mutates) non-const static / thread_local
    #: state without a `// thread-safe:` justification.
    MUTATES_STATIC = "mutates-static"
    #: Reads a wall clock (steady/system/high_resolution ::now, time(),
    #: gettimeofday, ...).
    READS_CLOCK = "reads-wall-clock"
    #: Uses a nondeterministic random source (std::random_device, rand()).
    #: Seeded deterministic engines (util/rng) do not count.
    USES_RAND = "uses-rand"
    #: Locale-dependent formatting or parsing (printf %f family, stod,
    #: strtod, std::locale, setlocale, imbue).
    USES_LOCALE = "uses-locale"
    #: Performs I/O (streams, FILE*, filesystem). Informational: surfaced
    #: in the report, enforced only through the other families.
    DOES_IO = "does-io"
    #: Iterates an unordered associative container (range-for or explicit
    #: begin()); iteration order is unspecified, so this must never feed
    #: emitted output in determinism-scoped directories.
    UNORDERED_ITER = "unordered-iteration"


#: Contract families enforced transitively.
FAMILY_NO_ALLOC = "no-alloc"
FAMILY_THREAD_SAFE = "thread-safe"
FAMILY_DETERMINISM = "determinism"
FAMILIES = (FAMILY_NO_ALLOC, FAMILY_THREAD_SAFE, FAMILY_DETERMINISM)

#: Which family a fact-level `contract-trusted` waiver must name to cover
#: an effect (Effect values not listed here are informational only).
EFFECT_FAMILY = {
    Effect.ALLOC: FAMILY_NO_ALLOC,
    Effect.ALLOC_AMORTIZED: FAMILY_NO_ALLOC,
    Effect.MUTATES_STATIC: FAMILY_THREAD_SAFE,
    Effect.READS_CLOCK: FAMILY_DETERMINISM,
    Effect.USES_RAND: FAMILY_DETERMINISM,
    Effect.USES_LOCALE: FAMILY_DETERMINISM,
    Effect.UNORDERED_ITER: FAMILY_DETERMINISM,
}


@dataclass
class Fact:
    """One direct effect observation inside a function body."""

    effect: Effect
    line: int
    evidence: str  # short source-level justification, e.g. "std::vector<int> tmp"
    #: reason from a `// contract-trusted: <family>: <reason>` comment on
    #: the fact's own line (or directly above): waives this fact only,
    #: unlike function-level trust which prunes the whole subtree.
    trusted: str | None = None

    def to_json(self) -> dict:
        return {"effect": self.effect.value, "line": self.line,
                "evidence": self.evidence, "trusted": self.trusted}


@dataclass
class CallSite:
    """An unresolved call found in a body.

    `name` is the simple callee name; `qualifier` the textual qualification
    as written (`std`, a class name, a receiver variable, ...), used by the
    resolver to narrow candidates. `receiver_type` is the declared type of
    the receiver variable when the parser could determine it ("" otherwise).
    """

    name: str
    qualifier: str
    receiver_type: str
    line: int


@dataclass
class Annotations:
    """Contract annotations attached to one function definition."""

    hot_path: bool = False          # // hot-path: no-alloc
    thread_safe: str | None = None  # // thread-safe: <reason>
    #: family -> reason, from // contract-trusted: <family>: <reason>
    trusted: dict[str, str] = field(default_factory=dict)


@dataclass
class Function:
    """One function or method definition (or pure-virtual declaration)."""

    qualified_name: str          # e.g. commsched::CostModel::candidate_cost
    simple_name: str             # candidate_cost
    class_name: str | None       # enclosing class qualified name, or None
    file: str                    # repo-relative path
    line: int                    # line of the definition's signature
    is_const_method: bool = False
    is_virtual: bool = False     # declared virtual / override / final
    is_static_method: bool = False
    has_body: bool = False
    annotations: Annotations = field(default_factory=Annotations)
    facts: list[Fact] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    #: Unique key: several definitions may share a qualified name
    #: (overloads); they are merged conservatively by the call graph, so a
    #: per-record key keeps the function table addressable.
    def key(self) -> str:
        return f"{self.qualified_name}@{self.file}:{self.line}"

    def location(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class ClassInfo:
    """Class hierarchy + member info needed by the checkers."""

    qualified_name: str
    file: str
    line: int
    bases: list[str] = field(default_factory=list)       # simple/qualified names
    virtual_methods: set[str] = field(default_factory=set)
    #: member name -> declared type (textual, template args stripped to one
    #: level), for receiver typing and unordered-member detection
    member_types: dict[str, str] = field(default_factory=dict)
    #: mutable members lacking a `// workspace:` justification
    unjustified_mutables: list[tuple[str, int]] = field(default_factory=list)
    #: mutable members that do carry the justification (inventoried)
    justified_mutables: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class TranslationUnit:
    """Parse result for one source file."""

    file: str
    functions: list[Function] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
