"""Pure-Python C++ frontend for the contract analyzer.

Design (DESIGN.md "Effect contracts"): the repo's own lint (tools/lint.py)
already guarantees a narrow, uniform C++ style — `namespace commsched`
everywhere, no `using namespace`, no naked new, clang-format layout. That
makes a tokenizer-plus-structural-scan frontend reliable enough to build a
whole-program call graph without a clang installation; the container image
used by CI and the dev environment ships only gcc, so requiring
`clang -ast-dump=json` would leave the gate unenforceable exactly where it
runs. The frontend is deliberately a *recognizer for this codebase*, not a
general C++ parser: constructs it cannot model (macro-generated functions,
expression-template magic) simply contribute no facts, and the lint keeps
such constructs out of src/ in the first place.

What it extracts per file:
  * namespace / class nesting, base-class lists, virtual method names;
  * function and method definitions with qualified names, constness,
    virtual-ness, and the contract annotations on the signature;
  * per-body direct effect facts (model.Effect) with line + evidence;
  * per-body call sites with best-effort receiver typing (class members,
    locals and parameters declared with visible types).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from model import (Annotations, CallSite, ClassInfo, EFFECT_FAMILY, Effect,
                   Fact, Function, TranslationUnit)

# ---------------------------------------------------------------------------
# Annotation grammar
# ---------------------------------------------------------------------------

HOT_PATH_MARK = "// hot-path: no-alloc"
THREAD_SAFE_RE = re.compile(r"//\s*thread-safe:\s*(.*)")
WORKSPACE_MARK = "// workspace:"
TRUSTED_RE = re.compile(
    r"//\s*contract-trusted:\s*(no-alloc|thread-safe|determinism)\s*:\s*(.*)")

# How many lines above a signature an annotation comment may sit. The
# convention is "directly above, possibly under other comment lines"; five
# lines absorbs a short doc comment between annotation and signature.
ANNOTATION_WINDOW = 5


def _strip_comments_and_strings(text: str) -> str:
    """Blank comments/strings, preserving newlines (same contract as
    tools/lint.py; duplicated so the analyzer stays importable on its own)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    break
                i += 1
            i += 1
            out.append("")  # placeholder so `""` != nothing
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"      # identifiers / keywords
    r"|::|->\*?|\+\+|--|<<=?|>>=?|<=>|[<>=!+\-*/%&|^]=|&&|\|\|"
    r"|\.\.\.|[0-9][0-9a-fA-FxX'.uUlLfFeE+\-pP]*"  # numeric literals
    r"|"                     # string placeholder
    r"|.",                         # any other single char
    re.DOTALL)

KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "throw", "new", "delete", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "decltype", "noexcept", "alignas", "typeid",
    "static_assert", "co_await", "co_yield", "co_return", "requires",
    "assert",
}

DECL_KEYWORDS = {
    "const", "constexpr", "consteval", "constinit", "static", "inline",
    "virtual", "explicit", "friend", "typename", "mutable", "volatile",
    "extern", "thread_local", "register", "signed", "unsigned", "long",
    "short",
}


@dataclass
class Token:
    text: str
    line: int


def tokenize(code: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        t = m.group(0)
        if not t.isspace():
            tokens.append(Token(t, line))
    return tokens


# ---------------------------------------------------------------------------
# Effect tables
# ---------------------------------------------------------------------------

# Owning std containers whose by-value construction allocates (mirrors the
# lint's hot-path table).
OWNING_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|set|multimap|"
    r"multiset|unordered_\w+|priority_queue|queue|stack|valarray|"
    r"(?:o|i)?stringstream|w?string|function|any)\b\s*[<\s{(]")

# Methods that may grow an allocating container.
GROWTH_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert", "insert_or_assign", "try_emplace", "resize", "reserve",
    "assign", "append", "push", "emplace_hint", "operator+=",
}

# Container-ish receiver types (std or unknown template) for growth calls.
ALLOCATING_RECEIVER_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|set|multimap|"
    r"multiset|unordered_\w+|priority_queue|queue|stack|w?string|"
    r"(?:o|i)?stringstream)\b")

UNORDERED_TYPE_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|"
                               r"multiset)\b")

ALLOC_FREE_FUNCTIONS = {
    "make_unique": "std::make_unique",
    "make_shared": "std::make_shared",
    "to_string": "std::to_string",
}

CLOCK_CALLS = {"now", "time", "clock", "gettimeofday", "localtime", "gmtime",
               "mktime", "timespec_get"}
RAND_CALLS = {"rand", "srand", "random_shuffle"}
RAND_TYPES = {"random_device"}
LOCALE_CALLS = {"setlocale", "imbue", "stod", "stof", "stold", "strtod",
                "strtof", "strtold", "atof"}
# printf-family formatting is locale-dependent when the format string
# contains a floating conversion (%f/%e/%g/%a read LC_NUMERIC's decimal
# point); _classify_call inspects the raw call line for one.
PRINTF_CALLS = {"printf", "fprintf", "sprintf", "snprintf", "vsnprintf"}
LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
LOCK_CALLS = {"lock", "try_lock", "lock_shared"}
IO_TYPES = {"ofstream", "ifstream", "fstream", "FILE"}
IO_CALLS = {"fopen", "fwrite", "fread", "fputs", "fclose", "open", "write",
            "read", "fsync", "rename", "remove"}
IO_STREAMS = {"cout", "cerr", "clog", "cin"}


# ---------------------------------------------------------------------------
# Structural scan
# ---------------------------------------------------------------------------

@dataclass
class _Scope:
    kind: str            # "namespace" | "class" | "brace"
    name: str            # "" for anonymous / plain braces
    cls: ClassInfo | None = None


TYPE_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|const\s+|inline\s+)*"
    r"((?:std\s*::\s*)?[A-Za-z_][\w:]*(?:\s*<[^;{}()]*>)?)"
    r"\s*[&*]*\s+([A-Za-z_]\w*)\s*(?:;|=|\{|\()")


class FileParser:
    """Parses one file into a TranslationUnit."""

    def __init__(self, path: Path, repo_root: Path,
                 class_registry: dict | None = None):
        self.path = path
        self.rel = path.relative_to(repo_root).as_posix()
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.split("\n")
        self.code = _strip_comments_and_strings(self.raw)
        self.tokens = tokenize(self.code)
        self.tu = TranslationUnit(file=self.rel)
        self.scopes: list[_Scope] = []
        #: qualified class name -> ClassInfo from a prior whole-repo pass;
        #: lets a .cpp body see member types declared in the class's header
        self.class_registry = class_registry or {}
        # line -> annotations found on that raw line
        self._ann_lines = self._collect_annotation_lines()

    # -- annotations --------------------------------------------------------

    def _collect_annotation_lines(self) -> dict[int, list[tuple[str, str]]]:
        anns: dict[int, list[tuple[str, str]]] = {}
        for lineno, line in enumerate(self.raw_lines, start=1):
            found: list[tuple[str, str]] = []
            if HOT_PATH_MARK in line:
                found.append(("hot-path", ""))
            m = THREAD_SAFE_RE.search(line)
            if m:
                found.append(("thread-safe", m.group(1).strip()))
            m = TRUSTED_RE.search(line)
            if m:
                found.append((f"trusted:{m.group(1)}", m.group(2).strip()))
            if found:
                anns[lineno] = found
        return anns

    def _fact(self, effect: Effect, lineno: int, evidence: str) -> Fact:
        """Build a fact, honoring a fact-level `contract-trusted` comment on
        the same line or the two lines above."""
        trusted = None
        family = EFFECT_FAMILY.get(effect)
        if family is not None:
            for ln in range(max(1, lineno - 2), lineno + 1):
                for kind, arg in self._ann_lines.get(ln, ()):
                    if kind == f"trusted:{family}":
                        trusted = arg
        return Fact(effect, lineno, evidence, trusted)

    def _annotations_for(self, sig_line: int) -> Annotations:
        """Annotations on the signature line or the comment block above it."""
        out = Annotations()
        for lineno in range(max(1, sig_line - ANNOTATION_WINDOW),
                            sig_line + 1):
            for kind, arg in self._ann_lines.get(lineno, ()):
                if kind == "hot-path":
                    out.hot_path = True
                elif kind == "thread-safe":
                    out.thread_safe = arg
                elif kind.startswith("trusted:"):
                    out.trusted[kind.split(":", 1)[1]] = arg
        return out

    # -- main scan ----------------------------------------------------------

    def parse(self) -> TranslationUnit:
        toks = self.tokens
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "namespace":
                i = self._enter_namespace(i)
            elif t.text in ("class", "struct") and self._is_class_def(i):
                i = self._enter_class(i)
            elif t.text == "enum":
                i = self._skip_enum(i)
            elif t.text == "{":
                self.scopes.append(_Scope("brace", ""))
                i += 1
            elif t.text == "}":
                if self.scopes:
                    self.scopes.pop()
                i += 1
            elif t.text == "(":
                handled, i = self._maybe_function(i)
                if not handled:
                    i = self._skip_balanced(i, "(", ")")
            else:
                i += 1
        return self.tu

    # -- scopes -------------------------------------------------------------

    def _namespace_chain(self) -> str:
        parts = [s.name for s in self.scopes
                 if s.kind in ("namespace", "class") and s.name]
        return "::".join(parts)

    def _current_class(self) -> ClassInfo | None:
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.cls
            if s.kind == "namespace":
                return None
        return None

    def _enter_namespace(self, i: int) -> int:
        toks = self.tokens
        j = i + 1
        name_parts: list[str] = []
        while j < len(toks) and (toks[j].text.isidentifier()
                                 or toks[j].text == "::"):
            if toks[j].text != "::":
                name_parts.append(toks[j].text)
            j += 1
        if j < len(toks) and toks[j].text == "{":
            # `namespace a::b {` nests like two scopes; model as one with
            # the joined name (qualified names come out identical).
            self.scopes.append(_Scope("namespace", "::".join(name_parts)))
            return j + 1
        if j < len(toks) and toks[j].text == "=":  # namespace alias
            return self._skip_to_semicolon(j)
        return j

    def _is_class_def(self, i: int) -> bool:
        """True when `class|struct` at i introduces a definition (has a `{`
        before `;` at this nesting level)."""
        toks = self.tokens
        depth = 0
        for j in range(i + 1, min(i + 200, len(toks))):
            t = toks[j].text
            if t in "<([":
                depth += 1
            elif t in ">)]":
                depth -= 1
            elif depth == 0 and t == "{":
                return True
            elif depth == 0 and (t == ";" or t == "("):
                return False
        return False

    def _enter_class(self, i: int) -> int:
        toks = self.tokens
        j = i + 1
        # skip attributes / alignas / final handled below
        name = ""
        while j < len(toks):
            t = toks[j].text
            if t.isidentifier() and t not in ("final", "alignas"):
                name = t
                j += 1
                # template args in specializations: Name<...>
                if j < len(toks) and toks[j].text == "<":
                    j = self._skip_balanced(j, "<", ">")
                break
            j += 1
        bases: list[str] = []
        # scan to `{`, collecting base names after `:`
        saw_colon = False
        while j < len(toks) and toks[j].text != "{":
            t = toks[j].text
            if t == ":":
                saw_colon = True
            elif saw_colon and t.isidentifier() and t not in (
                    "public", "private", "protected", "virtual"):
                # take the last identifier of each qualified base
                if j + 1 < len(toks) and toks[j + 1].text == "::":
                    pass  # keep walking; the final component wins
                else:
                    bases.append(t)
            j += 1
        ns = self._namespace_chain()
        qname = f"{ns}::{name}" if ns else name
        cls = ClassInfo(qualified_name=qname, file=self.rel,
                        line=toks[i].line, bases=bases)
        self.tu.classes.append(cls)
        self.scopes.append(_Scope("class", name, cls))
        self._scan_class_members(cls, j + 1)
        return j + 1

    def _skip_enum(self, i: int) -> int:
        """Skip an enum definition body entirely (enumerators look like
        identifiers followed by `(` in `kFoo = bar(x)` initializers)."""
        toks = self.tokens
        j = i + 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1
        if j < len(toks) and toks[j].text == "{":
            return self._skip_balanced(j, "{", "}")
        return j

    def _scan_class_members(self, cls: ClassInfo, body_start_tok: int) -> None:
        """Record member variable types, mutable members and virtual method
        names by a line-based scan of the class body. Token index
        body_start_tok points just past the opening `{`."""
        toks = self.tokens
        depth = 1
        j = body_start_tok
        start_line = toks[body_start_tok - 1].line if body_start_tok else 1
        end_line = start_line
        while j < len(toks) and depth:
            t = toks[j].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
            elif t == "virtual":
                # the next identifier before `(` is the method name
                k = j + 1
                last_ident = ""
                while k < len(toks) and toks[k].text not in ("(", ";", "{"):
                    if toks[k].text.isidentifier():
                        last_ident = toks[k].text
                    elif toks[k].text == "<":
                        k = self._skip_balanced(k, "<", ">") - 1
                    k += 1
                if k < len(toks) and toks[k].text == "(" and last_ident:
                    cls.virtual_methods.add(last_ident)
            elif t == "override" or t == "final":
                # walk back to the method name: ... name ( args ) qualifiers
                k = j - 1
                depth2 = 0
                while k > body_start_tok:
                    tt = toks[k].text
                    if tt == ")":
                        depth2 += 1
                    elif tt == "(":
                        depth2 -= 1
                        if depth2 < 0:
                            if toks[k - 1].text.isidentifier():
                                cls.virtual_methods.add(toks[k - 1].text)
                            break
                    k -= 1
            end_line = toks[j].line
            j += 1
        # member variable declarations, by line
        code_lines = self.code.split("\n")
        for lineno in range(start_line, min(end_line, len(code_lines)) + 1):
            line = code_lines[lineno - 1]
            m = TYPE_DECL_RE.match(line)
            if m and "(" not in line.split(m.group(2))[0].replace(
                    m.group(1), ""):
                cls.member_types.setdefault(m.group(2), m.group(1))
            if re.search(r"(?<![\w_])mutable\b", line):
                window = self.raw_lines[max(0, lineno - 3):lineno]
                name_m = re.search(r"([A-Za-z_]\w*)\s*[;={]", line)
                member = name_m.group(1) if name_m else "?"
                if any(WORKSPACE_MARK in w for w in window):
                    cls.justified_mutables.append((member, lineno))
                else:
                    cls.unjustified_mutables.append((member, lineno))

    # -- function recognition ------------------------------------------------

    def _skip_balanced(self, i: int, open_t: str, close_t: str) -> int:
        toks = self.tokens
        depth = 0
        j = i
        while j < len(toks):
            t = toks[j].text
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return j + 1
            j += 1
        return j

    def _skip_to_semicolon(self, i: int) -> int:
        toks = self.tokens
        j = i
        depth = 0
        while j < len(toks):
            t = toks[j].text
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == ";" and depth <= 0:
                return j + 1
            j += 1
        return j

    def _maybe_function(self, i: int) -> tuple[bool, int]:
        """Token i is `(` at namespace/class scope. Decide whether it opens a
        function declarator; if a definition, parse its body."""
        toks = self.tokens
        # ---- name chain before the `(` ----
        j = i - 1
        name_parts: list[str] = []
        if j >= 0 and toks[j].text == "operator":
            name_parts = ["operator()"]
            j -= 1
        elif j >= 1 and not toks[j].text.isidentifier():
            # operator symbols: walk back to `operator`
            k = j
            sym = []
            while k >= 0 and not toks[k].text.isidentifier():
                sym.append(toks[k].text)
                k -= 1
                if j - k > 3:
                    break
            if k >= 0 and toks[k].text == "operator":
                name_parts = ["operator" + "".join(reversed(sym))]
                j = k - 1
            else:
                return False, i
        elif j >= 0 and toks[j].text.isidentifier():
            if toks[j].text in KEYWORDS_NOT_CALLS or toks[j].text in \
                    DECL_KEYWORDS:
                return False, i
            name_parts = [toks[j].text]
            j -= 1
            if j >= 0 and toks[j].text == "~":
                name_parts[0] = "~" + name_parts[0]
                j -= 1
        else:
            return False, i
        # template-id before the name? e.g. run_indexed<T>( — the `<...>` was
        # consumed as comparison tokens; ignore (rare at def sites).
        # Class qualifiers: X::Y::name
        quals: list[str] = []
        while j >= 1 and toks[j].text == "::" and toks[j - 1].text.isidentifier():
            quals.insert(0, toks[j - 1].text)
            j -= 2
            if j >= 0 and toks[j].text == ">":
                # templated qualifier Foo<T>::bar — walk back over <...>
                depth = 0
                while j >= 0:
                    if toks[j].text == ">":
                        depth += 1
                    elif toks[j].text == "<":
                        depth -= 1
                        if depth == 0:
                            j -= 1
                            break
                    j -= 1
        # ---- leading keywords since the previous statement boundary ----
        is_virtual = False
        is_static = False
        k = j
        boundary = {";", "}", "{", ":", "public", "private", "protected"}
        while k >= 0 and toks[k].text not in boundary:
            if toks[k].text == "virtual":
                is_virtual = True
            elif toks[k].text == "static":
                is_static = True
            elif toks[k].text in ("return", "=", "throw", ",", "(",
                                  "co_return"):
                # an expression context: `x = foo(...)`, `return foo(...)`
                return False, i
            k -= 1

        # ---- parameter list ----
        close = self._skip_balanced(i, "(", ")") - 1  # index of `)`
        if close >= len(self.tokens):
            return False, i
        params_range = (i + 1, close)
        # ---- trailer: const/noexcept/override/...; then `{`, `;`, `=`, `:`
        j2 = close + 1
        is_const = False
        while j2 < len(toks):
            t = toks[j2].text
            if t == "const":
                is_const = True
                j2 += 1
            elif t in ("noexcept", "override", "final", "&", "&&", "mutable"):
                j2 += 1
            elif t == "(":  # noexcept(...)
                j2 = self._skip_balanced(j2, "(", ")")
            elif t == "->":  # trailing return type
                j2 += 1
                while j2 < len(toks) and toks[j2].text not in ("{", ";", "="):
                    if toks[j2].text == "<":
                        j2 = self._skip_balanced(j2, "<", ">")
                    else:
                        j2 += 1
            else:
                break
        if j2 >= len(toks):
            return False, i

        tail = toks[j2].text
        cls = self._current_class()
        if tail == ";":
            # declaration: record pure-virtual/virtual methods so dispatch
            # resolution knows the full override surface; also record
            # annotated declarations (the definition carries its own mark,
            # but hierarchy roots like Allocator::select_into are decl-only).
            if cls is not None and (is_virtual
                                    or name_parts[-1] in cls.virtual_methods):
                self._record(name_parts, quals, toks[i].line, cls,
                             is_const, True, is_static, body=None)
            return True, j2 + 1
        if tail == "=":
            # = default / = delete / = 0 (pure virtual)
            if j2 + 1 < len(toks) and toks[j2 + 1].text == "0" \
                    and cls is not None:
                self._record(name_parts, quals, toks[i].line, cls,
                             is_const, True, is_static, body=None)
            return True, self._skip_to_semicolon(j2)
        if tail == ":":
            # ctor initializer list: walk to the body `{` at depth 0
            j3 = j2 + 1
            depth = 0
            while j3 < len(toks):
                t = toks[j3].text
                if t in "([":
                    depth += 1
                elif t in ")]":
                    depth -= 1
                elif t == "{" and depth == 0:
                    break
                elif t == ";" and depth == 0:
                    return False, i  # bitfield or something odd
                j3 += 1
            if j3 >= len(toks):
                return False, i
            body_end = self._skip_balanced(j3, "{", "}")
            self._record(name_parts, quals, toks[i].line, cls, is_const,
                         is_virtual, is_static,
                         body=(j3 + 1, body_end - 1),
                         params_range=params_range)
            return True, body_end
        if tail == "{":
            body_end = self._skip_balanced(j2, "{", "}")
            self._record(name_parts, quals, toks[i].line, cls, is_const,
                         is_virtual, is_static,
                         body=(j2 + 1, body_end - 1),
                         params_range=params_range)
            return True, body_end
        return False, i

    def _record(self, name_parts: list[str], quals: list[str], line: int,
                cls: ClassInfo | None, is_const: bool, is_virtual: bool,
                is_static: bool, body: tuple[int, int] | None,
                params_range: tuple[int, int] | None = None) -> None:
        simple = name_parts[-1]
        ns = self._namespace_chain()
        if quals:
            # out-of-line member definition: Class::name — attach to the
            # class by (namespace + qual chain)
            owner = "::".join(quals)
            class_name = f"{ns}::{owner}" if ns else owner
        elif cls is not None:
            class_name = cls.qualified_name
        else:
            class_name = None
        qualified = f"{class_name}::{simple}" if class_name else (
            f"{ns}::{simple}" if ns else simple)
        # virtual-ness from the class's virtual method table too
        if cls is not None and simple in cls.virtual_methods:
            is_virtual = True
        fn = Function(
            qualified_name=qualified, simple_name=simple,
            class_name=class_name, file=self.rel, line=line,
            is_const_method=is_const, is_virtual=is_virtual,
            is_static_method=is_static, has_body=body is not None,
            annotations=self._annotations_for(line))
        if body is not None:
            local_types = self._param_types(params_range) if params_range \
                else {}
            self._scan_body(fn, body, local_types)
        self.tu.functions.append(fn)

    # -- body analysis -------------------------------------------------------

    def _param_types(self, params_range: tuple[int, int]) -> dict[str, str]:
        """Parameter name -> textual type, from the declarator's token
        range. Heuristic: within each comma-separated chunk the final
        identifier is the name, everything before it the type."""
        toks = self.tokens
        out: dict[str, str] = {}
        chunk: list[str] = []
        depth = 0
        for j in range(params_range[0], params_range[1]):
            t = toks[j].text
            if t in "<([":
                depth += 1
            elif t in ">)]":
                depth -= 1
            if t == "," and depth == 0:
                self._absorb_param(chunk, out)
                chunk = []
            else:
                chunk.append(t)
        self._absorb_param(chunk, out)
        return out

    @staticmethod
    def _absorb_param(chunk: list[str], out: dict[str, str]) -> None:
        # drop default arguments
        if "=" in chunk:
            chunk = chunk[:chunk.index("=")]
        idents = [t for t in chunk if t.isidentifier()
                  and t not in DECL_KEYWORDS]
        if len(idents) >= 2:
            out[idents[-1]] = " ".join(chunk[:-1]) if chunk else ""

    def _scan_body(self, fn: Function, body: tuple[int, int],
                   local_types: dict[str, str]) -> None:
        toks = self.tokens
        start, end = body
        cls = None
        for c in self.tu.classes:
            if c.qualified_name == fn.class_name:
                cls = c
                break
        if cls is None and fn.class_name:
            cls = self.class_registry.get(fn.class_name)

        def type_of(name: str) -> str:
            if name in local_types:
                return local_types[name]
            if cls is not None and name in cls.member_types:
                return cls.member_types[name]
            return ""

        # line-based facts over the body's source range
        first_line = toks[start].line if start < len(toks) else 0
        last_line = toks[end - 1].line if end - 1 < len(toks) else first_line
        code_lines = self.code.split("\n")
        for lineno in range(first_line, last_line + 1):
            line = code_lines[lineno - 1]
            if OWNING_CONTAINER_RE.search(line) and "&" not in line \
                    and "*" not in line:
                fn.facts.append(self._fact(Effect.ALLOC, lineno,
                                     line.strip()[:80]))
            am = re.match(
                r"^\s*(?:const\s+)?auto\s*&\s*(\w+)\s*=\s*(\w+)\s*;", line)
            if am:
                # `auto& cursor = cursor_;` aliases member scratch: growth
                # through the alias must carry the member's type, or the
                # alias would launder allocation facts
                aliased = type_of(am.group(2))
                if aliased:
                    local_types[am.group(1)] = aliased
            m = TYPE_DECL_RE.match(line)
            if m:
                local_types.setdefault(m.group(2), m.group(1))
            # non-const static/thread_local locals without justification
            sm = re.match(r"^\s*(?:static|thread_local)[\s\w].*;", line)
            if sm and "const" not in line and "(" not in line.split("=")[0]:
                window = self.raw_lines[max(0, lineno - 3):lineno]
                if not any("// thread-safe:" in w for w in window):
                    fn.facts.append(self._fact(Effect.MUTATES_STATIC, lineno,
                                         line.strip()[:80]))

        # token-based facts + call sites
        j = start
        while j < end:
            t = toks[j]
            txt = t.text
            nxt = toks[j + 1].text if j + 1 < end else ""
            if txt.isidentifier() and txt not in KEYWORDS_NOT_CALLS \
                    and nxt == "(":
                self._classify_call(fn, toks, j, type_of)
            elif txt.isidentifier() and txt in RAND_TYPES:
                fn.facts.append(self._fact(Effect.USES_RAND, t.line,
                                     f"std::{txt}"))
            elif txt.isidentifier() and txt in LOCK_TYPES:
                fn.facts.append(self._fact(Effect.TAKES_LOCK, t.line,
                                     f"std::{txt}"))
            elif txt.isidentifier() and txt in IO_STREAMS \
                    and j >= 1 and toks[j - 1].text == "::":
                fn.facts.append(self._fact(Effect.DOES_IO, t.line, f"std::{txt}"))
            elif txt == "for":
                self._maybe_unordered_iter(fn, toks, j, end, type_of)
            j += 1

    def _classify_call(self, fn: Function, toks: list[Token], j: int,
                       type_of) -> None:
        t = toks[j]
        name = t.text
        qualifier = ""
        receiver = ""
        receiver_type = ""
        if j >= 2 and toks[j - 1].text == "::":
            qualifier = toks[j - 2].text
        elif j >= 2 and toks[j - 1].text in (".", "->"):
            if toks[j - 2].text.isidentifier():
                receiver = toks[j - 2].text
                receiver_type = type_of(receiver)
            elif toks[j - 2].text in (")", "]"):
                # chained call / element access: unknown type, but still a
                # member call — the sentinel keeps the resolver from
                # treating it as an unqualified free function
                qualifier = "<expr>"
        line = t.line

        # effect classification by callee identity
        if name in ALLOC_FREE_FUNCTIONS and qualifier in ("std", ""):
            fn.facts.append(self._fact(Effect.ALLOC, line,
                                 ALLOC_FREE_FUNCTIONS[name] + "()"))
            return
        if name in CLOCK_CALLS:
            if name == "now" or qualifier in ("", "std") or receiver == "":
                # `steady_clock::now()` has qualifier steady_clock — catch
                # any `now(` plus the bare C functions.
                if name == "now" or not receiver:
                    fn.facts.append(self._fact(Effect.READS_CLOCK, line,
                                         f"{qualifier or receiver or ''}"
                                         f"::{name}()".lstrip(":")))
                    return
        if name in RAND_CALLS and not receiver:
            fn.facts.append(self._fact(Effect.USES_RAND, line, f"{name}()"))
            return
        if name in LOCALE_CALLS:
            fn.facts.append(self._fact(Effect.USES_LOCALE, line, f"{name}()"))
            return
        if name in PRINTF_CALLS:
            # Formatting integers/hex is locale-clean; floating conversions
            # read LC_NUMERIC. The format string usually sits on the call
            # line (clang-format keeps it there), so inspect the raw text.
            raw = self.raw_lines[line - 1] if line <= len(self.raw_lines) \
                else ""
            if re.search(r"%[-+ #0-9.*]*[fFeEgGaA]", raw):
                fn.facts.append(self._fact(
                    Effect.USES_LOCALE, line,
                    f"{name}() with a floating conversion "
                    "(LC_NUMERIC-dependent decimal point)"))
            if name in ("printf", "fprintf"):
                fn.facts.append(self._fact(Effect.DOES_IO, line,
                                           f"{name}()"))
            return
        if name in LOCK_CALLS and receiver:
            fn.facts.append(self._fact(Effect.TAKES_LOCK, line,
                                 f"{receiver}.{name}()"))
            return
        if name in IO_CALLS and not receiver:
            fn.facts.append(self._fact(Effect.DOES_IO, line, f"{name}()"))
            return
        if name in IO_TYPES or (qualifier == "std" and name in IO_TYPES):
            fn.facts.append(self._fact(Effect.DOES_IO, line, f"std::{name}"))
            return
        if name in GROWTH_METHODS and receiver:
            if not receiver_type or ALLOCATING_RECEIVER_RE.search(
                    receiver_type):
                # growth on a known-allocating or unknown-typed receiver;
                # repo-typed receivers (IndexSet, ...) resolve as calls.
                if not receiver_type:
                    # unknown receiver type: if ANY repo class defines this
                    # method the resolver will link it; still record the
                    # amortized fact only when clearly std (avoid noise).
                    fn.calls.append(CallSite(name, qualifier or receiver,
                                             receiver_type, line))
                    return
                fn.facts.append(self._fact(
                    Effect.ALLOC_AMORTIZED, line,
                    f"{receiver}.{name}() on {receiver_type.strip()}"))
                return
        # plain call site for the resolver
        fn.calls.append(CallSite(name, qualifier or receiver, receiver_type,
                                 line))

    def _maybe_unordered_iter(self, fn: Function, toks: list[Token], j: int,
                              end: int, type_of) -> None:
        """`for ( decl : expr )` where expr is unordered-typed."""
        if j + 1 >= end or toks[j + 1].text != "(":
            return
        close = self._skip_balanced(j + 1, "(", ")") - 1
        # find the `:` at depth 1
        depth = 0
        colon = -1
        for k in range(j + 1, min(close, end)):
            t = toks[k].text
            if t in "<([":
                depth += 1
            elif t in ">)]":
                depth -= 1
            elif t == ":" and depth == 1:
                colon = k
                break
        if colon < 0:
            return
        for k in range(colon + 1, min(close, end)):
            name = toks[k].text
            if name.isidentifier():
                ty = type_of(name)
                if ty and UNORDERED_TYPE_RE.search(ty):
                    fn.facts.append(self._fact(
                        Effect.UNORDERED_ITER, toks[k].line,
                        f"range-for over {name} ({ty.strip()})"))
                    return


def parse_file(path: Path, repo_root: Path,
               class_registry: dict | None = None) -> TranslationUnit:
    return FileParser(path, repo_root, class_registry).parse()


def parse_program(paths: list[Path], repo_root: Path) -> list[TranslationUnit]:
    """Two-pass parse: the first pass collects every class's member types so
    the second can type receivers in .cpp bodies whose class lives in a
    header (otherwise `auto& s = scratch_;` in a method defined out of line
    would launder the member's allocating type)."""
    registry: dict = {}
    for p in paths:
        for cls in FileParser(p, repo_root).parse().classes:
            existing = registry.get(cls.qualified_name)
            if existing is None:
                registry[cls.qualified_name] = cls
            else:
                existing.member_types.update(cls.member_types)
                existing.virtual_methods |= cls.virtual_methods
    return [parse_file(p, repo_root, registry) for p in paths]
