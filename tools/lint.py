#!/usr/bin/env python3
"""Repo-specific C++ lint for commsched (DESIGN.md "Correctness & analysis").

Enforces the project conventions clang-tidy cannot know about:

  pragma-once        every header starts with `#pragma once` (first directive)
  include-order      each contiguous #include block is sorted; a .cpp file
                     includes its own header first
  include-hygiene    no <cassert>/<assert.h> (COMMSCHED_ASSERT is the project
                     invariant mechanism), no <iostream> in src/ headers
  no-naked-new       no `new`/`delete`/`malloc`/`free`/`realloc`/`calloc` —
                     ownership goes through containers and smart pointers
  assert-macro       no raw `assert(`/`abort(`/`exit(` in src/ — invariants
                     throw commsched::InvariantError via COMMSCHED_ASSERT so
                     simulations fail loudly and tests can assert on them
  namespace          every src/ file declares `namespace commsched`
  no-using-namespace `using namespace` is forbidden at any scope
  mutable-scratch    `mutable` members in src/core/ need a `// workspace:`
                     justification on the same or an adjacent preceding line —
                     hidden per-call scratch belongs in an explicit
                     CostWorkspace so cost evaluation stays shareable across
                     threads (DESIGN.md "Shape canonicalization & CommCache")
  static-state       non-const `static` / `thread_local` variables in src/
                     (globals or function-locals) need a `// thread-safe:`
                     justification on the same or an adjacent preceding line —
                     campaign cells run concurrently (DESIGN.md "Campaign
                     engine & parallel execution"), so hidden mutable state
                     is a data race unless explicitly argued otherwise
  hot-path-alloc     a function definition annotated `// hot-path: no-alloc`
                     (the scheduler event loop's per-event operations,
                     DESIGN.md "Million-job event loop") must not declare
                     local allocating containers (vector/deque/map/set/
                     string/...) or call make_unique/make_shared in its
                     body — references, pointers and spans to containers
                     are fine. Steady-state events must reuse member
                     scratch, never touch the heap.
  whitespace         no tabs, no trailing whitespace, newline at EOF

Usage: tools/lint.py [paths...]   (defaults to src/ and tests/)
Exits non-zero when any finding is reported. There is no suppression
mechanism on purpose: fix the code, or narrow the rule here with a comment
explaining why.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests"]
CXX_SUFFIXES = {".cpp", ".hpp"}

findings: list[str] = []


def report(path: Path, line: int, rule: str, message: str) -> None:
    rel = path.relative_to(REPO_ROOT)
    findings.append(f"{rel}:{line}: [{rule}] {message}")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines so
    line numbers survive. Handles //, /* */, "..." and '...' with escapes."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail to keep lines sane
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

# `delete` the keyword, but not `= delete` (deleted functions) and not
# `delete` inside an identifier.
NAKED_NEW_RE = re.compile(r"(?<![\w_])new\s+[A-Za-z_(]")
NAKED_DELETE_RE = re.compile(r"(?<![\w_=])(?<!= )delete\s+[\w(*]|delete\[\]")
ALLOC_CALL_RE = re.compile(r"(?<![\w_.:])(malloc|calloc|realloc|free)\s*\(")
RAW_ASSERT_RE = re.compile(r"(?<![\w_])(assert|abort)\s*\(")
EXIT_RE = re.compile(r"(?<![\w_.:])exit\s*\(")
USING_NAMESPACE_RE = re.compile(r"(?<![\w_])using\s+namespace\b")
MUTABLE_RE = re.compile(r"(?<![\w_])mutable\b")
# A `static` / `thread_local` variable declaration: the line starts with the
# storage keyword(s) and declares an object, not a function (no parameter
# list on the line — `static Foo helper(...)` declarations and
# direct-initializers are out of this heuristic's reach on purpose; the rule
# targets the common `static T name;` / `static T name = ...;` shapes).
STATIC_STATE_RE = re.compile(
    r"^\s*(?:static\s+thread_local|thread_local\s+static"
    r"|static|thread_local)\s+[\w:<>,\s*&]+[\w\]]\s*(?:=[^=].*)?;")

BANNED_INCLUDES = {
    "cassert": "use COMMSCHED_ASSERT (util/assert.hpp) instead of <cassert>",
    "assert.h": "use COMMSCHED_ASSERT (util/assert.hpp) instead of <assert.h>",
}


def lint_whitespace(path: Path, raw: str) -> None:
    for lineno, line in enumerate(raw.split("\n"), start=1):
        if "\t" in line:
            report(path, lineno, "whitespace", "tab character")
        if line != line.rstrip():
            report(path, lineno, "whitespace", "trailing whitespace")
    if raw and not raw.endswith("\n"):
        report(path, raw.count("\n") + 1, "whitespace", "missing newline at EOF")


def lint_pragma_once(path: Path, raw: str) -> None:
    if path.suffix != ".hpp":
        return
    for lineno, line in enumerate(raw.split("\n"), start=1):
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        if re.fullmatch(r"#\s*pragma\s+once", stripped):
            return
        report(path, lineno, "pragma-once",
               f"first preprocessor directive is `{stripped}`, "
               "expected `#pragma once`")
        return
    report(path, 1, "pragma-once", "header has no `#pragma once`")


def own_header_of(path: Path) -> str | None:
    """For src/X/y.cpp return "X/y.hpp" iff that header exists."""
    try:
        rel = path.relative_to(REPO_ROOT / "src")
    except ValueError:
        return None
    header = rel.with_suffix(".hpp")
    if (REPO_ROOT / "src" / header).exists():
        return header.as_posix()
    return None


def lint_includes(path: Path, raw: str) -> None:
    lines = raw.split("\n")
    includes: list[tuple[int, str, str]] = []  # (lineno, delim, target)
    for lineno, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((lineno, m.group(1), m.group(2)))

    for lineno, _delim, target in includes:
        base = target.split("/")[-1]
        if base in BANNED_INCLUDES or target in BANNED_INCLUDES:
            key = base if base in BANNED_INCLUDES else target
            report(path, lineno, "include-hygiene", BANNED_INCLUDES[key])

    if path.suffix == ".cpp":
        own = own_header_of(path)
        if own and includes and includes[0][2] != own:
            if any(target == own for _, _, target in includes):
                report(path, includes[0][0], "include-order",
                       f'own header "{own}" must be the first include')

    # Each contiguous block of #include lines must be internally sorted.
    block: list[tuple[int, str, str]] = []

    def check_block() -> None:
        if len(block) < 2:
            return
        keys = [(delim, target) for _, delim, target in block]
        if keys != sorted(keys):
            report(path, block[0][0], "include-order",
                   "include block is not sorted (angle brackets before "
                   "quotes, then lexicographic)")

    prev_lineno = None
    for lineno, delim, target in includes:
        if prev_lineno is not None and lineno == prev_lineno + 1:
            block.append((lineno, delim, target))
        else:
            check_block()
            block = [(lineno, delim, target)]
        prev_lineno = lineno
    check_block()


HOT_PATH_MARK = "// hot-path: no-alloc"
# An owning-container mention: `std::vector<...`, `std::string s`, etc.
# Lines that also contain `&` or `*` are exempt (references/pointers/spans
# to containers do not allocate; the heuristic accepts the rare false
# negative on mixed lines rather than flagging parameter lists).
HOT_ALLOC_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|set|multimap|"
    r"multiset|unordered_\w+|priority_queue|queue|stack|valarray|"
    r"(?:o|i)?stringstream|w?string|function|any)\b\s*[<\s]")
HOT_ALLOC_CALL_RE = re.compile(r"\bstd\s*::\s*make_(?:unique|shared)\b")


def hot_path_body(code_lines: list[str], start: int) -> tuple[int, int] | None:
    """Line range [first, last] of the function body following the
    annotation at `start` (0-based), or None when the annotation sits on a
    bodyless declaration (a `;` at paren depth 0 before any `{`)."""
    paren = 0
    brace = 0
    body_start = None
    for j in range(start, len(code_lines)):
        for ch in code_lines[j]:
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            elif ch == ";" and paren == 0 and body_start is None:
                return None
            elif ch == "{":
                if body_start is None:
                    body_start = j
                brace += 1
            elif ch == "}":
                brace -= 1
                if body_start is not None and brace == 0:
                    return (body_start, j)
    return None  # unbalanced (macro trickery); nothing to check


def lint_hot_path(path: Path, raw: str) -> None:
    if (REPO_ROOT / "src") not in path.parents:
        return
    raw_lines = raw.split("\n")
    code_lines = strip_comments_and_strings(raw).split("\n")
    for i, line in enumerate(raw_lines):
        if HOT_PATH_MARK not in line:
            continue
        body = hot_path_body(code_lines, i)
        if body is None:
            continue  # declaration only; the definition carries its own mark
        for k in range(body[0], body[1] + 1):
            code = code_lines[k]
            if HOT_ALLOC_CALL_RE.search(code):
                report(path, k + 1, "hot-path-alloc",
                       "make_unique/make_shared inside a "
                       "`// hot-path: no-alloc` function")
            if (HOT_ALLOC_CONTAINER_RE.search(code)
                    and "&" not in code and "*" not in code):
                report(path, k + 1, "hot-path-alloc",
                       "owning container declared inside a "
                       "`// hot-path: no-alloc` function: reuse member "
                       "scratch instead of allocating per event")


def lint_code(path: Path, raw: str) -> None:
    code = strip_comments_and_strings(raw)
    in_src = (REPO_ROOT / "src") in path.parents
    in_core = (REPO_ROOT / "src" / "core") in path.parents
    raw_lines = raw.split("\n")
    for lineno, line in enumerate(code.split("\n"), start=1):
        if USING_NAMESPACE_RE.search(line):
            report(path, lineno, "no-using-namespace",
                   "`using namespace` is forbidden")
        if NAKED_NEW_RE.search(line):
            report(path, lineno, "no-naked-new",
                   "naked `new`: use containers or std::make_unique")
        if NAKED_DELETE_RE.search(line):
            report(path, lineno, "no-naked-new",
                   "naked `delete`: ownership must be automatic")
        if ALLOC_CALL_RE.search(line):
            report(path, lineno, "no-naked-new",
                   "C allocation call: use containers or smart pointers")
        if in_src:
            if RAW_ASSERT_RE.search(line):
                report(path, lineno, "assert-macro",
                       "raw assert/abort: use COMMSCHED_ASSERT "
                       "(util/assert.hpp) so violations throw InvariantError")
            if EXIT_RE.search(line):
                report(path, lineno, "assert-macro",
                       "exit() in library code: throw instead")
            m = STATIC_STATE_RE.match(line)
            if m and "(" not in m.group(0) and "const" not in m.group(0):
                window = raw_lines[max(0, lineno - 3):lineno]
                if not any("// thread-safe:" in w for w in window):
                    report(path, lineno, "static-state",
                           "non-const static/thread_local state in src/ "
                           "without a `// thread-safe:` justification: "
                           "campaign cells run concurrently")
        if in_core and MUTABLE_RE.search(line):
            # The justification comment may sit on the member's own line or
            # on the (up to two) lines directly above it.
            window = raw_lines[max(0, lineno - 3):lineno]
            if not any("// workspace:" in w for w in window):
                report(path, lineno, "mutable-scratch",
                       "`mutable` member in src/core/ without a "
                       "`// workspace:` justification: hidden per-call "
                       "scratch belongs in an explicit CostWorkspace")

    if in_src and "namespace commsched" not in code:
        report(path, 1, "namespace",
               "file does not declare `namespace commsched`")


def lint_file(path: Path) -> None:
    raw = path.read_text(encoding="utf-8")
    lint_whitespace(path, raw)
    lint_pragma_once(path, raw)
    lint_includes(path, raw)
    lint_code(path, raw)
    lint_hot_path(path, raw)


def main(argv: list[str]) -> int:
    roots = [REPO_ROOT / p for p in (argv or DEFAULT_PATHS)]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        if not root.is_dir():
            print(f"lint.py: no such path: {root}", file=sys.stderr)
            return 2
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CXX_SUFFIXES)
    for path in files:
        lint_file(path)
    for finding in findings:
        print(finding)
    print(f"lint.py: checked {len(files)} files, "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
